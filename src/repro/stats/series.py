"""Containers for figure-style results.

A :class:`Series` is one line on one of the paper's plots — a label plus
(x, Summary) points.  A :class:`SeriesSet` is a whole figure.  Both render
to aligned ASCII tables so a benchmark run prints the same rows the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .summary import Summary


@dataclass
class Series:
    """One labelled curve: e.g. ``ide1`` throughput vs reader count."""

    label: str
    points: List[Tuple[float, Summary]] = field(default_factory=list)

    def add(self, x: float, summary: Summary) -> None:
        self.points.append((x, summary))

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def means(self) -> List[float]:
        return [s.mean for _, s in self.points]

    def at(self, x: float) -> Summary:
        for px, summary in self.points:
            if px == x:
                return summary
        raise KeyError(f"no point at x={x} in series {self.label!r}")


@dataclass
class SeriesSet:
    """A figure: a title, an x-axis label, and several series."""

    title: str
    xlabel: str = "x"
    ylabel: str = "Throughput (MB/s)"
    series: List[Series] = field(default_factory=list)
    #: Optional per-run records behind the summarised points (plain
    #: JSON-ready dicts).  Experiments that keep raw counters worth
    #: publishing — e.g. ``xfaults``'s per-run retransmit and recovery
    #: counts — append them here; the CLI's ``--detail-out`` writes
    #: them to a file.  Rendering ignores this field entirely.
    detail: List[dict] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.title!r}")

    @property
    def labels(self) -> List[str]:
        return [s.label for s in self.series]

    def render(self, precision: int = 2, show_std: bool = True) -> str:
        """Render the figure as an aligned ASCII table.

        Rows are x values, columns are series; each cell is
        ``mean (std)`` as in the paper's Table 1.
        """
        xs: List[float] = []
        for s in self.series:
            for x in s.xs:
                if x not in xs:
                    xs.append(x)
        xs.sort()

        def cell(series: Series, x: float) -> str:
            try:
                summary = series.at(x)
            except KeyError:
                return "-"
            if show_std:
                return (f"{summary.mean:.{precision}f} "
                        f"({summary.std:.{precision}f})")
            return f"{summary.mean:.{precision}f}"

        header = [self.xlabel] + self.labels
        rows = [[self._fmt_x(x)] + [cell(s, x) for s in self.series]
                for x in xs]
        widths = [max(len(str(row[i])) for row in [header] + rows)
                  for i in range(len(header))]
        lines = [self.title, self.ylabel]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)))
        return "\n".join(lines)

    @staticmethod
    def _fmt_x(x: float) -> str:
        if float(x).is_integer():
            return str(int(x))
        return f"{x:g}"
