"""Streaming statistical summaries (Welford's algorithm).

The paper reports each point as the mean of at least ten runs and quotes
standard deviations (e.g. Table 1).  :class:`RunningSummary` accumulates
those statistics in one pass without storing samples; :class:`Summary` is
the frozen result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class Summary:
    """Frozen summary statistics of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return float("nan")
        return self.std / math.sqrt(self.count)

    def ci95(self) -> float:
        """Half-width of a normal-approximation 95 % confidence interval."""
        return 1.96 * self.sem

    @property
    def relative_std(self) -> float:
        """std / mean — the paper's "< 5 % of the mean" criterion."""
        if self.mean == 0:
            return float("inf")
        return self.std / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.2f} ({self.std:.2f})"


class RunningSummary:
    """One-pass mean/variance accumulator (numerically stable)."""

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (n - 1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def freeze(self) -> Summary:
        if self.count == 0:
            raise ValueError("cannot summarise an empty sample")
        return Summary(count=self.count, mean=self.mean, std=self.std,
                       minimum=self._min, maximum=self._max)


def summarize(values: Iterable[float]) -> Summary:
    """Convenience: summarise an iterable in one call."""
    acc = RunningSummary()
    acc.extend(values)
    return acc.freeze()
