"""Synthetic NFS traces and the reordering/sequentiality metrics."""

from .generate import (DEFAULT_TRACE_SEED, default_rng, random_trace,
                       sequential_trace, stride_trace)
from .metrics import (group_by_handle, mean_seqcount,
                      offset_backjump_fraction, reorder_fraction,
                      sequentiality_profile)
from .records import (OP_COMMIT, OP_CREATE, OP_GETATTR, OP_KINDS,
                      OP_MKDIR, OP_OPEN, OP_READ, OP_READDIR, OP_REMOVE,
                      OP_RENAME, OP_SETATTR, OP_STAT, OP_WRITE,
                      TraceRecord)

__all__ = [
    "TraceRecord",
    "OP_READ",
    "OP_WRITE",
    "OP_OPEN",
    "OP_GETATTR",
    "OP_COMMIT",
    "OP_STAT",
    "OP_READDIR",
    "OP_CREATE",
    "OP_MKDIR",
    "OP_REMOVE",
    "OP_RENAME",
    "OP_SETATTR",
    "OP_KINDS",
    "DEFAULT_TRACE_SEED",
    "default_rng",
    "sequential_trace",
    "stride_trace",
    "random_trace",
    "reorder_fraction",
    "offset_backjump_fraction",
    "sequentiality_profile",
    "mean_seqcount",
    "group_by_handle",
]
