"""Synthetic NFS traces and the reordering/sequentiality metrics."""

from .generate import random_trace, sequential_trace, stride_trace
from .metrics import (group_by_handle, mean_seqcount,
                      offset_backjump_fraction, reorder_fraction,
                      sequentiality_profile)
from .records import TraceRecord

__all__ = [
    "TraceRecord",
    "sequential_trace",
    "stride_trace",
    "random_trace",
    "reorder_fraction",
    "offset_backjump_fraction",
    "sequentiality_profile",
    "mean_seqcount",
    "group_by_handle",
]
