"""Synthetic NFS request traces.

Generates the request streams the paper reasons about: sequential
streams with a tunable reordering probability (the nfsiod effect) and
stride streams, so the heuristics can be studied in isolation from the
full simulator.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .records import TraceRecord

BLOCK = 8 * 1024


def sequential_trace(fh: object, nblocks: int,
                     reorder_probability: float = 0.0,
                     max_displacement: int = 3,
                     block_size: int = BLOCK,
                     inter_arrival: float = 0.0005,
                     rng: Optional[random.Random] = None
                     ) -> List[TraceRecord]:
    """A sequential read stream with nfsiod-style local reordering.

    Reordering is modelled as bounded displacement: with probability
    ``reorder_probability`` a request swaps forward past up to
    ``max_displacement`` successors — small perturbations, exactly the
    kind SlowDown is designed to absorb (§6.2).
    """
    if not 0.0 <= reorder_probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if max_displacement < 1:
        raise ValueError("displacement must be at least 1")
    rng = rng or random.Random(0x7ACE)
    order = list(range(nblocks))
    index = 0
    while index < nblocks - 1:
        if rng.random() < reorder_probability:
            jump = rng.randint(1, max_displacement)
            target = min(index + jump, nblocks - 1)
            order[index], order[target] = order[target], order[index]
            index = target + 1
        else:
            index += 1
    return [
        TraceRecord(time=position * inter_arrival, fh=fh,
                    offset=block * block_size, count=block_size,
                    client_seq=block)
        for position, block in enumerate(order)
    ]


def stride_trace(fh: object, nblocks: int, strides: int,
                 block_size: int = BLOCK,
                 inter_arrival: float = 0.0005) -> List[TraceRecord]:
    """A §7 stride stream: arms visited round-robin, in issue order."""
    if strides < 1:
        raise ValueError("need at least one stride arm")
    arm_blocks = nblocks // strides
    records = []
    seq = 0
    for round_index in range(arm_blocks):
        for arm in range(strides):
            block = arm * arm_blocks + round_index
            records.append(TraceRecord(
                time=seq * inter_arrival, fh=fh,
                offset=block * block_size, count=block_size,
                client_seq=seq))
            seq += 1
    return records


def random_trace(fh: object, nblocks: int,
                 accesses: Optional[int] = None,
                 block_size: int = BLOCK,
                 inter_arrival: float = 0.0005,
                 rng: Optional[random.Random] = None
                 ) -> List[TraceRecord]:
    """A uniformly random access stream (the read-ahead pessimum)."""
    rng = rng or random.Random(0x7A2D)
    accesses = accesses or nblocks
    return [
        TraceRecord(time=seq * inter_arrival, fh=fh,
                    offset=rng.randrange(nblocks) * block_size,
                    count=block_size, client_seq=seq)
        for seq in range(accesses)
    ]
