"""Synthetic NFS request traces.

Generates the request streams the paper reasons about: sequential
streams with a tunable reordering probability (the nfsiod effect) and
stride streams, so the heuristics can be studied in isolation from the
full simulator.

Every generator takes an explicit ``rng``; when omitted, each generator
falls back to its *own* deterministic default stream, derived from the
module seed and the generator's name (the repository's common-random-
numbers discipline, :func:`repro.sim.rand.derive_seed`).  The defaults
are therefore reproducible call to call but never aliased: two different
generators left on their defaults draw from provably distinct streams.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..sim.rand import derive_seed
from .records import TraceRecord

BLOCK = 8 * 1024

#: Master seed for the per-generator default streams.
DEFAULT_TRACE_SEED = 0x7ACE


def default_rng(generator_name: str) -> random.Random:
    """The deterministic default stream for one named generator.

    A fresh ``Random`` seeded from ``(DEFAULT_TRACE_SEED, name)`` — so
    repeated calls of one generator reproduce, while distinct generators
    (``"sequential"``, ``"stride"``, ``"random"``) never share a stream.
    """
    return random.Random(derive_seed(DEFAULT_TRACE_SEED, generator_name))


def sequential_trace(fh: object, nblocks: int,
                     reorder_probability: float = 0.0,
                     max_displacement: int = 3,
                     block_size: int = BLOCK,
                     inter_arrival: float = 0.0005,
                     rng: Optional[random.Random] = None
                     ) -> List[TraceRecord]:
    """A sequential read stream with nfsiod-style local reordering.

    Reordering is modelled as bounded displacement: with probability
    ``reorder_probability`` a request swaps forward past up to
    ``max_displacement`` successors — small perturbations, exactly the
    kind SlowDown is designed to absorb (§6.2).

    ``rng`` drives the reordering draws; pass your own stream for
    experiment-controlled randomness.  The default is this generator's
    private stream (``default_rng("sequential")``), distinct from every
    other generator's default.
    """
    if not 0.0 <= reorder_probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if max_displacement < 1:
        raise ValueError("displacement must be at least 1")
    rng = rng or default_rng("sequential")
    order = list(range(nblocks))
    index = 0
    while index < nblocks - 1:
        if rng.random() < reorder_probability:
            jump = rng.randint(1, max_displacement)
            target = min(index + jump, nblocks - 1)
            order[index], order[target] = order[target], order[index]
            index = target + 1
        else:
            index += 1
    return [
        TraceRecord(time=position * inter_arrival, fh=fh,
                    offset=block * block_size, count=block_size,
                    client_seq=block)
        for position, block in enumerate(order)
    ]


def stride_trace(fh: object, nblocks: int, strides: int,
                 block_size: int = BLOCK,
                 inter_arrival: float = 0.0005,
                 arrival_jitter: float = 0.0,
                 rng: Optional[random.Random] = None) -> List[TraceRecord]:
    """A §7 stride stream: arms visited round-robin, in issue order.

    ``arrival_jitter`` perturbs each inter-arrival gap by a uniform
    factor in ``[1 - jitter, 1 + jitter]`` (issue *order* is unchanged —
    only timestamps wobble, as clock skew would produce in a real
    trace).  ``rng`` drives those draws; the default is this generator's
    private stream (``default_rng("stride")``), distinct from every
    other generator's default.  With ``arrival_jitter=0`` (the default)
    the stream is fully deterministic and the rng is never consulted.
    """
    if strides < 1:
        raise ValueError("need at least one stride arm")
    if not 0.0 <= arrival_jitter < 1.0:
        raise ValueError("arrival_jitter must be in [0, 1)")
    rng = rng or default_rng("stride")
    arm_blocks = nblocks // strides
    records = []
    seq = 0
    clock = 0.0
    for round_index in range(arm_blocks):
        for arm in range(strides):
            block = arm * arm_blocks + round_index
            if arrival_jitter:
                when = clock
                clock += inter_arrival * (
                    1.0 + arrival_jitter * (2.0 * rng.random() - 1.0))
            else:
                # Exact multiples, matching the jitter-free stream the
                # heuristic unit tests are written against.
                when = seq * inter_arrival
            records.append(TraceRecord(
                time=when, fh=fh,
                offset=block * block_size, count=block_size,
                client_seq=seq))
            seq += 1
    return records


def random_trace(fh: object, nblocks: int,
                 accesses: Optional[int] = None,
                 block_size: int = BLOCK,
                 inter_arrival: float = 0.0005,
                 rng: Optional[random.Random] = None
                 ) -> List[TraceRecord]:
    """A uniformly random access stream (the read-ahead pessimum).

    ``rng`` draws the block positions; the default is this generator's
    private stream (``default_rng("random")``), distinct from every
    other generator's default.
    """
    rng = rng or default_rng("random")
    accesses = accesses or nblocks
    return [
        TraceRecord(time=seq * inter_arrival, fh=fh,
                    offset=rng.randrange(nblocks) * block_size,
                    count=block_size, client_seq=seq)
        for seq in range(accesses)
    ]
