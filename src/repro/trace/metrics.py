"""Reordering and sequentiality metrics over NFS traces.

Two families of questions from §6 of the paper:

* **How reordered is the request stream?**
  :func:`reorder_fraction` counts requests that arrive before a request
  issued earlier (adjacent inversions), per file handle — this is what
  "6 % request reordering on UDP and 2 % on TCP" measures.

* **How sequential does the stream look to a given heuristic?**
  :func:`sequentiality_profile` replays a trace through any heuristic
  from :mod:`repro.readahead` and reports the per-access seqCount — so
  one can see directly that a 2 % reordered stream drops the default
  metric to ~1 over and over while SlowDown keeps it high.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence

from ..readahead import Heuristic, ReadState
from .records import TraceRecord


def group_by_handle(trace: Iterable[TraceRecord]
                    ) -> Dict[object, List[TraceRecord]]:
    """Split a trace into per-file-handle streams (arrival order kept)."""
    streams: Dict[object, List[TraceRecord]] = defaultdict(list)
    for record in trace:
        streams[record.fh].append(record)
    return dict(streams)


def reorder_fraction(trace: Sequence[TraceRecord]) -> float:
    """Fraction of per-file adjacent arrivals that invert issue order.

    A pair of consecutive arrivals (within one file handle) counts as an
    inversion when the later arrival carries the earlier client
    sequence number.
    """
    inversions = 0
    pairs = 0
    for records in group_by_handle(trace).values():
        for earlier, later in zip(records, records[1:]):
            pairs += 1
            if later.client_seq < earlier.client_seq:
                inversions += 1
    return inversions / pairs if pairs else 0.0


def offset_backjump_fraction(trace: Sequence[TraceRecord]) -> float:
    """Fraction of per-file adjacent arrivals whose offset goes backward.

    A purely sequential stream with no reordering never jumps back; this
    is the signal the *server* can see without client cooperation.
    """
    backjumps = 0
    pairs = 0
    for records in group_by_handle(trace).values():
        for earlier, later in zip(records, records[1:]):
            pairs += 1
            if later.offset < earlier.offset:
                backjumps += 1
    return backjumps / pairs if pairs else 0.0


def sequentiality_profile(trace: Sequence[TraceRecord],
                          heuristic: Heuristic) -> List[int]:
    """Replay a trace through a heuristic; return per-access seqCounts.

    Each file handle gets its own fresh :class:`ReadState` (i.e. an
    infinitely large nfsheur table), isolating the heuristic itself.
    """
    states: Dict[object, ReadState] = defaultdict(ReadState)
    profile: List[int] = []
    for record in trace:
        state = states[record.fh]
        profile.append(heuristic.observe(
            state, record.offset, record.count, record.time))
    return profile


def mean_seqcount(trace: Sequence[TraceRecord],
                  heuristic: Heuristic) -> float:
    """Average seqCount a heuristic sustains over a trace."""
    profile = sequentiality_profile(trace, heuristic)
    return sum(profile) / len(profile) if profile else 0.0
