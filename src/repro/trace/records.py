"""NFS trace records.

The paper's heuristics were motivated by the authors' earlier passive
NFS tracing study (Ellard et al., FAST '03): requests observed at the
server frequently arrive out of the order the client application issued
them.  This package provides the record type and the metrics used to
quantify that — the "more than 10 % of requests reordered" style numbers
of §6.

The same record type doubles as the unit of the capture/replay subsystem
(:mod:`repro.replay`): a record captured at the client vnode boundary
carries, in addition to the passive-trace fields, the *operation kind*,
the issuing *client index*, and the file *path* — the run-stable
identity replay needs (file handles are only meaningful within the run
that minted them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Operation kinds a captured record may carry.  The passive server-side
#: trace of §6 only ever records READs; captured client-side traces see
#: the full vnode-boundary vocabulary.
OP_READ = "read"
OP_WRITE = "write"
OP_OPEN = "open"
OP_GETATTR = "getattr"
OP_COMMIT = "commit"
#: Namespace ops (captured client-side only).  ``stat`` is a path-based
#: attribute fetch (the attr-cache-aware one, unlike ``getattr`` which
#: names an already-open file); ``create`` carries the new file's size
#: in ``count``; ``rename`` carries its target path in ``path2``.
OP_STAT = "stat"
OP_READDIR = "readdir"
OP_CREATE = "create"
OP_MKDIR = "mkdir"
OP_REMOVE = "remove"
OP_RENAME = "rename"
OP_SETATTR = "setattr"

OP_KINDS = (OP_READ, OP_WRITE, OP_OPEN, OP_GETATTR, OP_COMMIT,
            OP_STAT, OP_READDIR, OP_CREATE, OP_MKDIR, OP_REMOVE,
            OP_RENAME, OP_SETATTR)

#: Ops that move data and therefore must have a positive byte count.
_DATA_OPS = (OP_READ, OP_WRITE)


@dataclass(frozen=True)
class TraceRecord:
    """One observed NFS operation.

    In the passive §6 use (server-side arrival trace) only the first
    five fields are meaningful and ``op`` stays at its ``"read"``
    default.  Captured client-side traces fill in everything.
    """

    time: float          # arrival (server trace) or issue (capture) time
    fh: Any              # file handle / stream key (hashable)
    offset: int          # byte offset of the access
    count: int           # bytes requested (0 for metadata ops)
    client_seq: int      # issue order at the client (ground truth)
    op: str = OP_READ    # operation kind (see OP_KINDS)
    client: int = 0      # index of the issuing client machine
    path: str = ""       # file name (run-stable identity for replay)
    path2: str = ""      # second path (RENAME target); "" otherwise

    def __post_init__(self):
        if self.op not in OP_KINDS:
            raise ValueError(f"unknown trace op {self.op!r}")
        if self.offset < 0:
            raise ValueError("bad trace record range")
        if self.count <= 0 and self.op in _DATA_OPS:
            raise ValueError("bad trace record range")
        if self.count < 0:
            raise ValueError("bad trace record range")
        if self.path2 and self.op != OP_RENAME:
            raise ValueError("path2 is only meaningful for rename")
