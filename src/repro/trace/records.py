"""NFS trace records.

The paper's heuristics were motivated by the authors' earlier passive
NFS tracing study (Ellard et al., FAST '03): requests observed at the
server frequently arrive out of the order the client application issued
them.  This package provides the record type and the metrics used to
quantify that — the "more than 10 % of requests reordered" style numbers
of §6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TraceRecord:
    """One observed NFS READ at the server."""

    time: float          # arrival time at the server
    fh: Any              # file handle (hashable)
    offset: int          # byte offset of the read
    count: int           # bytes requested
    client_seq: int      # issue order at the client (ground truth)

    def __post_init__(self):
        if self.offset < 0 or self.count <= 0:
            raise ValueError("bad trace record range")
