"""Application-level workload generators driven over NFS mounts.

The benchmark runners of :mod:`repro.bench` reproduce the paper's §4.3
streaming-read workload.  This package holds the *metadata-heavy*
workload family the paper's §8 warns is missing from most NFS
benchmarks: large directory trees exercised with the list/stat/grep/
untar/edit patterns whose costs are dominated by LOOKUP, GETATTR, and
READDIR rather than READ.
"""

from .namespace import (NamespaceRunResult, NamespaceTreeSpec,
                        NamespaceWorkload, PATTERNS,
                        run_namespace_once)

__all__ = [
    "NamespaceTreeSpec",
    "NamespaceWorkload",
    "NamespaceRunResult",
    "PATTERNS",
    "run_namespace_once",
]
