"""Namespace (metadata) workloads: big directory trees, small I/O.

The paper's benchmark — like most NFS benchmarks it critiques — moves
bulk data through a handful of large files, so LOOKUP and GETATTR are
rounding errors.  Real mail spools, source trees, and home directories
are the opposite: tens of thousands of names, and a request mix
dominated by the namespace procedures.  This module generates that
shape deterministically:

* :class:`NamespaceTreeSpec` — a 10k–50k-file tree, flat (one huge
  directory, the mail-spool trap) or nested (fanout^depth leaf
  directories, the source-tree shape).
* :class:`NamespaceWorkload` — the access pattern driven over it:
  ``stat`` (Zipf-popular attribute probes), ``list`` (READDIR sweeps),
  ``grep`` (list a directory, then read every file's head), ``untar``
  (create a fresh subtree), ``edit`` (the editor save dance:
  write-temp + rename-over).
* :func:`run_namespace_once` — one seeded run on a fresh testbed;
  returns operation throughput and the cache/RPC counters the
  detectors consume.

Everything is a pure function of ``(config, tree, workload)``: file
population, Zipf draws, and interleaving all derive from the config
seed, so runs are byte-identical across processes and kernels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from ..host.testbed import TestbedConfig, build_nfs_testbed
from ..obs.session import active_session
from ..sim.rand import derive_seed

#: Access patterns a workload may name.
PATTERNS = ("stat", "list", "grep", "untar", "edit")


@dataclass(frozen=True)
class NamespaceTreeSpec:
    """A deterministic file population.

    ``depth=0`` puts every file in one directory — the flat mail-spool
    shape whose lookups and listings scale with the directory itself.
    ``depth>0`` spreads files round-robin over ``fanout**depth`` leaf
    directories.
    """

    files: int = 10_000
    depth: int = 0
    fanout: int = 32
    file_size: int = 8 * 1024
    prefix: str = "ns"

    def __post_init__(self):
        if self.files < 1:
            raise ValueError("need at least one file")
        if self.depth < 0:
            raise ValueError("depth cannot be negative")
        if self.depth and self.fanout < 2:
            raise ValueError("nested trees need fanout >= 2")
        if self.file_size < 1:
            raise ValueError("files cannot be empty")

    @property
    def leaf_dirs(self) -> int:
        return self.fanout ** self.depth

    def dir_paths(self) -> List[str]:
        """Every leaf directory, in deterministic order."""
        if self.depth == 0:
            return [self.prefix]
        dirs = []
        for index in range(self.leaf_dirs):
            digits = []
            value = index
            for _ in range(self.depth):
                digits.append(value % self.fanout)
                value //= self.fanout
            dirs.append(self.prefix + "".join(
                f"/d{digit:02d}" for digit in reversed(digits)))
        return dirs

    def paths(self) -> Iterator[Tuple[str, int]]:
        """Every ``(path, size)``, files round-robin over leaf dirs."""
        dirs = self.dir_paths()
        for index in range(self.files):
            yield (f"{dirs[index % len(dirs)]}/f{index:06d}",
                   self.file_size)


@dataclass(frozen=True)
class NamespaceWorkload:
    """The access pattern driven over a tree."""

    pattern: str = "stat"
    ops: int = 1_000
    zipf_s: float = 1.1
    #: Files whose heads ``grep`` reads per listed directory.
    grep_files: int = 64

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown namespace pattern "
                             f"{self.pattern!r}; pick one of {PATTERNS}")
        if self.ops < 1:
            raise ValueError("need at least one operation")
        if self.zipf_s < 0:
            raise ValueError("Zipf exponent cannot be negative")
        if self.grep_files < 1:
            raise ValueError("grep must read at least one file")


@dataclass
class NamespaceRunResult:
    """One namespace run's counters."""

    ops: int = 0
    errors: int = 0
    elapsed: float = 0.0
    files: int = 0
    mount_stats: Dict[str, int] = field(default_factory=dict)
    server_stats: Dict[str, int] = field(default_factory=dict)
    metrics: dict = None
    #: Captured vnode-boundary trace (``None`` unless the testbed ran
    #: with ``capture_trace=True``); a :class:`repro.replay.TraceFile`.
    trace: object = None

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> dict:
        """Canonical (JSON-able, key-sorted) run summary."""
        return {
            "ops": self.ops,
            "errors": self.errors,
            "elapsed_s": self.elapsed,
            "ops_per_s": self.ops_per_s,
            "files": self.files,
            "mount": dict(sorted(self.mount_stats.items())),
            "server": dict(sorted(self.server_stats.items())),
        }


class _Zipf:
    """A seeded Zipf sampler over a fixed population."""

    def __init__(self, population: Sequence[str], s: float,
                 rng: random.Random):
        from ..replay.scale import zipf_weights
        self._population = list(population)
        self._weights = zipf_weights(len(self._population), s)
        self._total = sum(self._weights)
        self._rng = rng

    def pick(self) -> str:
        from ..replay.scale import _zipf_pick
        return self._population[
            _zipf_pick(self._weights, self._total, self._rng)]


def _driver(sim, mount, tree: NamespaceTreeSpec,
            workload: NamespaceWorkload, ops: int, rng: random.Random,
            result: NamespaceRunResult, client: int):
    """One client's operation stream (generator process)."""
    files = [path for path, _size in tree.paths()]
    zipf_files = _Zipf(files, workload.zipf_s, rng)
    dirs = tree.dir_paths()
    zipf_dirs = _Zipf(dirs, workload.zipf_s, rng)
    #: Directory listings, cached per driver like a shell's glob state.
    listings: Dict[str, List[str]] = {}
    #: Directories this driver has already mkdir'd (untar).
    made_dirs: set = set()
    for index in range(ops):
        try:
            if workload.pattern == "stat":
                yield from mount.stat(zipf_files.pick())
            elif workload.pattern == "list":
                yield from mount.readdir(zipf_dirs.pick())
            elif workload.pattern == "grep":
                directory = zipf_dirs.pick()
                names = listings.get(directory)
                if names is None:
                    names = yield from mount.readdir(directory)
                    listings[directory] = names
                for name in names[:workload.grep_files]:
                    nfile = yield from mount.open(f"{directory}/{name}")
                    yield from mount.read(nfile, 0, 1)
            elif workload.pattern == "untar":
                parent = f"{tree.prefix}.untar/c{client}"
                if parent not in made_dirs:
                    yield from mount.mkdir(f"{tree.prefix}.untar")
                    yield from mount.mkdir(parent)
                    made_dirs.add(parent)
                yield from mount.create(f"{parent}/f{index:06d}",
                                        size=tree.file_size)
                yield from mount.touch(f"{parent}/f{index:06d}",
                                       mtime=sim.now)
            elif workload.pattern == "edit":
                target = zipf_files.pick()
                yield from mount.stat(target)
                nfile = yield from mount.open(target)
                yield from mount.read(nfile, 0, 1)
                temp = f"{target}.tmp{client}"
                yield from mount.create(temp, size=tree.file_size)
                yield from mount.rename(temp, target)
        except OSError:
            result.errors += 1
            continue
        result.ops += 1


_MOUNT_STATS = ("path_walks", "path_components", "lookup_rpcs",
                "lookup_cache_hits", "attr_hits", "attr_misses",
                "attr_checks", "stale_attr_hits", "cto_getattrs",
                "readdir_listings", "readdir_rpcs", "readdir_entries",
                "readdir_restarts")
_SERVER_STATS = ("lookups", "lookup_misses", "getattrs", "setattrs",
                 "readdirs", "readdir_entries", "creates", "mkdirs",
                 "removes", "renames", "stale_handles", "bad_cookies",
                 "reads")


def run_namespace_once(config: TestbedConfig,
                       tree: NamespaceTreeSpec = NamespaceTreeSpec(),
                       workload: NamespaceWorkload = NamespaceWorkload()
                       ) -> NamespaceRunResult:
    """One namespace-workload run on a fresh testbed.

    Operations are split evenly over the testbed's client machines;
    each client's Zipf stream is seeded independently from the config
    seed.
    """
    testbed = build_nfs_testbed(config)
    for path, size in tree.paths():
        testbed.server.export_file(path, size)
    result = NamespaceRunResult(files=tree.files)
    nclients = max(1, config.num_clients)
    share = -(-workload.ops // nclients)
    processes = []
    for client in range(nclients):
        ops = min(share, workload.ops - client * share)
        if ops <= 0:
            break
        rng = random.Random(derive_seed(
            config.seed, f"workload.namespace.{workload.pattern}"
                         f".{client}"))
        mount = testbed.mount_for(client)
        processes.append(testbed.sim.spawn(
            _driver(testbed.sim, mount, tree, workload, ops, rng,
                    result, client),
            name=f"namespace:{workload.pattern}:{client}"))
    testbed.sim.run()
    for process in processes:
        if process.error is not None:
            raise process.error
        if not process.finished:
            raise RuntimeError(
                f"namespace driver {process.name} never finished")
    result.elapsed = testbed.sim.now
    for name in _MOUNT_STATS:
        result.mount_stats[name] = sum(
            getattr(mount.stats, name) for mount in testbed.mounts)
    for name in _SERVER_STATS:
        result.server_stats[name] = getattr(testbed.server.stats, name)
    capture_file = getattr(testbed, "capture_trace_file", None)
    if capture_file is not None:
        result.trace = capture_file()
    if testbed.obs.enabled:
        if testbed.obs.registry.enabled:
            result.metrics = testbed.obs.registry.snapshot()
        session = active_session()
        if session is not None:
            session.record(testbed.obs)
    return result
