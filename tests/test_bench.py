"""Unit tests for the benchmark harness."""

import pytest

from repro.bench import (FileSpec, ITERATION_BYTES, READER_COUNTS,
                         files_for_readers, full_fileset, repeat,
                         run_local_once, run_nfs_once, run_stride_once,
                         stride_offsets)
from repro.host import TestbedConfig

MB = 1 << 20
SCALE = 1 / 64  # tiny files: tests must be fast


class TestFileset:
    def test_equal_split(self):
        specs = files_for_readers(4)
        assert len(specs) == 4
        assert all(spec.size == 64 * MB for spec in specs)

    def test_total_preserved_across_counts(self):
        for count in READER_COUNTS:
            specs = files_for_readers(count)
            assert sum(spec.size for spec in specs) == ITERATION_BYTES

    def test_scale_shrinks_files(self):
        specs = files_for_readers(2, scale=0.5)
        assert specs[0].size == 64 * MB

    def test_names_unique(self):
        names = [spec.name for spec in full_fileset(scale=1 / 16)]
        assert len(names) == len(set(names))
        assert len(names) == sum(READER_COUNTS)

    def test_full_fileset_is_paper_shape(self):
        specs = full_fileset()
        assert specs[0].size == 256 * MB
        assert specs[-1].size == 8 * MB
        assert sum(spec.size for spec in specs) == 6 * 256 * MB

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            files_for_readers(0)
        with pytest.raises(ValueError):
            files_for_readers(1, scale=0.0)


class TestStrideOffsets:
    def test_two_arm_interleave(self):
        offsets = stride_offsets(8 * 8192, strides=2, read_size=8192)
        assert [offset // 8192 for offset in offsets] == \
            [0, 4, 1, 5, 2, 6, 3, 7]

    def test_every_block_exactly_once(self):
        offsets = stride_offsets(64 * 8192, strides=4, read_size=8192)
        assert sorted(offsets) == [index * 8192 for index in range(64)]

    def test_single_arm_is_sequential(self):
        offsets = stride_offsets(4 * 8192, strides=1, read_size=8192)
        assert offsets == [0, 8192, 16384, 24576]


class TestRunners:
    def test_local_run_reads_everything(self):
        result = run_local_once(TestbedConfig(), 4, scale=SCALE)
        assert result.total_bytes == \
            sum(s.size for s in files_for_readers(4, SCALE))
        assert result.throughput_mb_s > 0
        assert len(result.completion_times()) == 4

    def test_nfs_run_reads_everything(self):
        result = run_nfs_once(TestbedConfig(), 2, scale=SCALE)
        assert result.total_bytes == \
            sum(s.size for s in files_for_readers(2, SCALE))

    def test_stride_run(self):
        result = run_stride_once(TestbedConfig(), 4, scale=SCALE)
        assert result.total_bytes > 0
        assert len(result.readers) == 1

    def test_completion_times_sorted(self):
        result = run_local_once(TestbedConfig(), 8, scale=SCALE)
        times = result.completion_times()
        assert times == sorted(times)

    def test_runs_are_deterministic_per_seed(self):
        first = run_local_once(TestbedConfig(seed=3), 2, scale=SCALE)
        second = run_local_once(TestbedConfig(seed=3), 2, scale=SCALE)
        assert first.elapsed == second.elapsed

    def test_different_seeds_differ(self):
        first = run_nfs_once(TestbedConfig(seed=1), 2, scale=SCALE)
        second = run_nfs_once(TestbedConfig(seed=2), 2, scale=SCALE)
        assert first.elapsed != second.elapsed


class TestRepeat:
    def test_repeat_summarises(self):
        summary = repeat(lambda config: run_local_once(config, 1, SCALE),
                         TestbedConfig(), runs=3)
        assert summary.count == 3
        assert summary.mean > 0

    def test_paper_variance_criterion(self):
        """§4.3: 'the standard deviation for each set of runs is less
        than 5% of the mean' — at our tiny test scale (4 MB files)
        per-run noise is relatively larger, so the bound is doubled;
        the archived full benches meet the 5% criterion on nearly
        every point."""
        summary = repeat(lambda config: run_nfs_once(config, 2, SCALE),
                         TestbedConfig(), runs=4)
        assert summary.relative_std < 0.12

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError):
            repeat(lambda config: None, TestbedConfig(), runs=0)


class TestParallelRepeat:
    """--jobs repeats: parallel output byte-identical to serial."""

    def test_parallel_summary_matches_serial(self):
        import functools
        from repro.bench.runner import collect_throughputs
        point = functools.partial(run_nfs_once, nreaders=2, scale=SCALE)
        config = TestbedConfig(seed=11)
        serial = collect_throughputs(point, config, runs=3, jobs=1)
        parallel = collect_throughputs(point, config, runs=3, jobs=3)
        assert parallel == serial           # bit-identical floats
        assert repeat(point, config, runs=3, jobs=3) == \
            repeat(point, config, runs=3, jobs=1)

    def test_jobs_validated(self):
        import functools
        point = functools.partial(run_nfs_once, nreaders=1, scale=SCALE)
        with pytest.raises(ValueError):
            repeat(point, TestbedConfig(), runs=2, jobs=0)
