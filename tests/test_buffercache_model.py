"""Model-based property test: the buffer cache vs a reference model.

Hypothesis drives random sequences of reads, writes, flushes, and syncs
against the real :class:`BufferCache` and a trivially correct in-memory
reference; after every step the visible state (which blocks are
readable, which are dirty) must agree once the simulation settles.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import WDC_WD200BB
from repro.kernel import BufferCache, DiskIoScheduler
from repro.sim import Simulator

BLOCKS = 64  # small universe so operations collide often

operations = st.lists(
    st.one_of(
        st.tuples(st.just("read"),
                  st.integers(0, BLOCKS - 8),
                  st.integers(1, 8)),
        st.tuples(st.just("write"),
                  st.integers(0, BLOCKS - 8),
                  st.integers(1, 8)),
        st.tuples(st.just("flush"), st.just(0), st.just(0)),
        st.tuples(st.just("sync"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=30)


def build():
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    iosched = DiskIoScheduler(sim, drive)
    cache = BufferCache(sim, iosched,
                        capacity_bytes=BLOCKS * 8192 * 2)
    return sim, cache


@given(operations)
@settings(max_examples=60, deadline=None)
def test_cache_matches_reference_model(ops):
    sim, cache = build()
    resident = set()
    dirty = set()

    def do_read(start, count):
        def reader(sim):
            yield cache.read(start, count)

        sim.run_until_complete(sim.spawn(reader(sim)))
        resident.update(range(start, start + count))

    def do_sync():
        def syncer(sim):
            yield cache.sync()

        sim.run_until_complete(sim.spawn(syncer(sim)))
        dirty.clear()

    for op, start, count in ops:
        if op == "read":
            do_read(start, count)
        elif op == "write":
            cache.write(start, count)
            sim.run()
            blocks = set(range(start, start + count))
            resident |= blocks
            if cache.dirty_blocks:
                dirty |= blocks
            else:
                dirty.clear()   # threshold writeback flushed everything
        elif op == "flush":
            sim.run()
            cache.flush()
            resident.intersection_update(dirty)
        elif op == "sync":
            do_sync()

    sim.run()
    for blkno in range(BLOCKS):
        assert (blkno in cache) == (blkno in resident), \
            f"block {blkno} residency mismatch"
    # Dirty accounting: the cache never reports more dirty blocks than
    # the model believes are unwritten.
    assert cache.dirty_blocks <= len(dirty)
