"""Property-based tests for the calendar queue (hypothesis).

The reference model is the legacy heapq ``EventQueue`` — the kernel the
calendar replaces.  Every interleaving of push/pop/cancel the strategy
generates must dequeue the *same payloads in the same order* from both
structures, including duplicate timestamps (FIFO within a timestamp via
the monotone sequence counter) and across bucket-resize boundaries
(grow past ``_grow_at``, shrink below ``_shrink_at``).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import MIN_BUCKETS, CalendarQueue
from repro.sim.events import EventQueue

# Timestamps spanning six orders of magnitude plus a small pool of
# exactly-repeating values so duplicate-timestamp FIFO is exercised
# hard, not just occasionally.
TIMESTAMPS = st.one_of(
    st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5]),
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
)

#: One scripted step: push(when), pop, or cancel(i) of the i-th oldest
#: still-live pushed record.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), TIMESTAMPS),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("cancel"), st.integers(min_value=0,
                                                 max_value=200)),
    ),
    max_size=300,
)


class ModelQueue(EventQueue):
    """The heapq reference, extended with tombstone cancellation so the
    model speaks the same cancel verb as the calendar."""

    def __init__(self):
        super().__init__()
        self._cancelled = set()

    def cancel_payload(self, payload):
        self._cancelled.add(payload)

    def pop(self):
        while True:
            when, payload = super().pop()
            if payload in self._cancelled:
                self._cancelled.discard(payload)
                continue
            return when, payload

    def __len__(self):
        return super().__len__() - len(self._cancelled)


def run_script(ops, queue_width=None):
    """Drive calendar and heapq-model through one interleaving.

    Pops are compared as ``(when, payload)`` pairs at every step, not
    just at the end, so a transient ordering divergence cannot cancel
    itself out.
    """
    calendar = CalendarQueue(width=queue_width)
    model = ModelQueue()
    live = []  # [(when, payload, calendar_record)] in push order
    payload_counter = iter(range(10**9))
    for op, arg in ops:
        if op == "push":
            payload = next(payload_counter)
            record = calendar.push(arg, payload)
            model.push(arg, payload)
            live.append((arg, payload, record))
        elif op == "pop":
            if not len(model):
                assert len(calendar) == 0
                continue
            expected = model.pop()
            assert calendar.pop() == expected
            live = [entry for entry in live if entry[1] != expected[1]]
        else:  # cancel
            if not live:
                continue
            _when, payload, record = live.pop(arg % len(live))
            calendar.cancel(record)
            model.cancel_payload(payload)
    # Drain: whatever interleaving ran, the tails must agree too.
    while len(model):
        assert calendar.pop() == model.pop()
    assert len(calendar) == 0
    with pytest.raises(IndexError):
        calendar.pop()


class TestInterleavings:
    @given(OPS)
    @settings(max_examples=200, deadline=None)
    def test_push_pop_cancel_matches_heapq_model(self, ops):
        run_script(ops)

    @given(OPS, st.floats(min_value=1e-3, max_value=1e3,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_explicit_width_construction_matches_too(self, ops, width):
        run_script(ops, queue_width=width)


class TestDuplicateTimestamps:
    @given(st.integers(min_value=2, max_value=64),
           st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_fifo_within_a_timestamp(self, count, when):
        queue = CalendarQueue()
        for payload in range(count):
            queue.push(when, payload)
        assert [queue.pop()[1] for _ in range(count)] == \
            list(range(count))

    @given(st.lists(st.sampled_from([1.0, 2.0, 3.0]),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_stable_across_interleaved_duplicates(self, whens):
        queue = CalendarQueue()
        for payload, when in enumerate(whens):
            queue.push(when, payload)
        popped = [queue.pop() for _ in range(len(whens))]
        expected = sorted(enumerate(whens), key=lambda kv: (kv[1], kv[0]))
        assert popped == [(when, payload)
                          for payload, when in expected]


class TestResizeBoundaries:
    @given(st.integers(min_value=1, max_value=400),
           st.floats(min_value=1e-4, max_value=1e4,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_growth_across_resize_keeps_order(self, count, spacing):
        # Push enough uniformly spaced events to force repeated grows
        # past _grow_at, then drain — order must be exact.
        queue = CalendarQueue()
        start_buckets = queue._nbuckets
        for payload in range(count):
            queue.push(payload * spacing, payload)
        if count > 2 * start_buckets:
            assert queue._nbuckets > start_buckets  # resize happened
        assert [queue.pop()[1] for _ in range(count)] == \
            list(range(count))

    @given(st.integers(min_value=64, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_shrink_path_keeps_order(self, count):
        # Grow, drain most of the population to trip the shrink
        # threshold, then interleave fresh pushes: the shrink must not
        # scramble the survivors.
        queue = CalendarQueue()
        for payload in range(count):
            queue.push(float(payload), payload)
        grown = queue._nbuckets
        drained = [queue.pop()[1] for _ in range(count - 4)]
        assert drained == list(range(count - 4))
        assert queue._nbuckets < grown or grown == MIN_BUCKETS
        for payload in range(count, count + 8):
            queue.push(float(payload), payload)
        tail = [queue.pop()[1] for _ in range(len(queue))]
        assert tail == list(range(count - 4, count + 8))

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_pathological_clustering_still_sorted(self, cluster):
        # All events clustered in a narrow window plus a far outlier:
        # bucket-local insort and the year-advance sweep must
        # cooperate.
        queue = CalendarQueue()
        for payload, when in enumerate(cluster):
            queue.push(when, payload)
        queue.push(1e9, "far")
        order = [queue.pop() for _ in range(len(cluster) + 1)]
        assert order == sorted(order, key=lambda kv: kv[0])
        assert order[-1] == (1e9, "far")
