"""Tests for the fleet-scale campaign orchestrator.

The contract under test is the one DESIGN.md §11 states: the *fold*
(per-cell results in index order) is byte-identical however a campaign
was executed — serial, sharded, worker-crashed, timed out and retried,
or orchestrator-killed and resumed — while everything nondeterministic
lives strictly in the coverage accounting.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (CampaignIncomplete, CampaignJournal,
                            CampaignOptions, CampaignSpec, JournalError,
                            atomic_write_text, bench_spec, cells_csv,
                            chaos_spec, collect_throughputs_sharded,
                            fold_bench, fold_chaos, fold_json,
                            fold_records, run_bench_cell,
                            run_chaos_cell, run_chaos_campaign,
                            run_sharded, run_spec_campaign,
                            run_spec_cell, write_report)
from repro.campaign.orchestrator import Orchestrator
from repro.campaign.workers import (KILL_CELL_ENV, KILL_FLAG_ENV,
                                    should_inject_kill, worker_main)
from repro.host.testbed import TestbedConfig

# Module-level cell runners: must be picklable for the fork workers.


def square_cell(index):
    return {"value": index * index}


def slow_cell(index):
    if index == 2:
        time.sleep(30.0)
    return {"value": index}


def flaky_cell(flag_path, index):
    """Fails cell 1 once (marker file), succeeds on retry."""
    if index == 1 and not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("tried\n")
        raise RuntimeError("transient failure")
    return {"value": index}


def always_broken_cell(index):
    if index == 1:
        raise RuntimeError("permanently broken")
    return {"value": index}


def _history_hammer(path, writer, count):
    """Append ``count`` records to the shared history store."""
    from repro.diagnose import append_history
    for n in range(count):
        append_history(path, {"writer": writer, "n": n})


def chaos_shaped_broken_cell(index):
    """Chaos-result shape, with cell 1 permanently erroring."""
    if index == 1:
        raise RuntimeError("permanently broken")
    return {"ok": True, "failed_oracles": [],
            "fingerprint": f"fp-{index}", "events": 0}


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------

class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        with journal:
            journal.append({"type": "result", "cell": 0, "attempt": 1,
                            "result": {"v": 1}})
            journal.append({"type": "attempt", "cell": 1, "attempt": 1,
                            "status": "crash", "detail": "boom"})
        loaded = CampaignJournal.load(path)
        assert loaded.header["fingerprint"] == "abc"
        assert loaded.header["version"] == 1
        assert len(loaded.records) == 2
        assert loaded.repaired == 0 and loaded.dropped == 0

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        assert open(path).read() == "hello\n"
        assert not os.path.exists(path + ".tmp")

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        with journal:
            journal.append({"type": "result", "cell": 0, "attempt": 1,
                            "result": {"v": 1}})
        with open(path, "a") as handle:
            handle.write('{"type": "result", "cell": 1, "att')
        loaded = CampaignJournal.load(path)
        assert loaded.dropped == 1
        assert len(loaded.records) == 1  # cell 1 simply re-runs

    def test_torn_tail_without_newline_is_dropped(self, tmp_path):
        # Parses as JSON but the newline never hit the disk: still torn.
        path = str(tmp_path / "j.jsonl")
        CampaignJournal(path).create({"fingerprint": "abc"})
        with open(path, "a") as handle:
            handle.write('{"type": "result", "cell": 0}')
        loaded = CampaignJournal.load(path)
        assert loaded.dropped == 1
        assert loaded.records == []

    def test_torn_tail_repaired_from_wal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        record = {"type": "result", "cell": 0, "attempt": 1,
                  "result": {"v": 1}}
        # Crash between WAL commit and journal append: WAL exists,
        # journal tail torn.
        atomic_write_text(path + ".wal",
                          json.dumps(record, sort_keys=True) + "\n")
        with open(path, "a") as handle:
            handle.write('{"type": "result", "ce')
        loaded = CampaignJournal.load(path)
        assert loaded.repaired == 1 and loaded.dropped == 0
        assert loaded.records == [record]
        assert not os.path.exists(path + ".wal")

    def test_torn_tail_is_truncated_on_disk(self, tmp_path):
        # The reviewer's crash scenario: load() must heal the file, not
        # just the in-memory view, or a resume session's first append
        # concatenates onto the torn fragment and is lost.
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        with journal:
            journal.append({"type": "result", "cell": 0, "attempt": 1,
                            "result": {"v": 0}})
        with open(path, "a") as handle:
            handle.write('{"type": "result", "cell": 1, "att')
        assert CampaignJournal.load(path).dropped == 1
        # Resume session appends two more records, as append() would.
        resumed = CampaignJournal(path)
        with resumed:
            resumed.append({"type": "result", "cell": 1, "attempt": 1,
                            "result": {"v": 1}})
            resumed.append({"type": "result", "cell": 2, "attempt": 1,
                            "result": {"v": 2}})
        loaded = CampaignJournal.load(path)
        assert loaded.dropped == 0 and loaded.repaired == 0
        assert [r["cell"] for r in loaded.records] == [0, 1, 2]

    def test_wal_repair_is_durable_in_journal(self, tmp_path):
        # A record repaired from the WAL must be re-written to the
        # journal before the WAL is removed: a second crash right after
        # load() must not lose the committed result.
        path = str(tmp_path / "j.jsonl")
        CampaignJournal(path).create({"fingerprint": "abc"})
        record = {"type": "result", "cell": 0, "attempt": 1,
                  "result": {"v": 1}}
        atomic_write_text(path + ".wal",
                          json.dumps(record, sort_keys=True) + "\n")
        with open(path, "a") as handle:
            handle.write('{"type": "result", "ce')
        first = CampaignJournal.load(path)
        assert first.repaired == 1
        assert not os.path.exists(path + ".wal")
        # No WAL any more — the journal alone must still carry it.
        second = CampaignJournal.load(path)
        assert second.records == [record]
        assert second.repaired == 0 and second.dropped == 0

    def test_wal_duplicate_of_completed_append_is_ignored(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        record = {"type": "result", "cell": 0, "attempt": 1,
                  "result": {"v": 1}}
        with journal:
            journal.append(record)
        # Crash between append and WAL removal.
        atomic_write_text(path + ".wal",
                          json.dumps(record, sort_keys=True,
                                     separators=(",", ":")) + "\n")
        loaded = CampaignJournal.load(path)
        assert loaded.records == [record]
        assert loaded.repaired == 0

    def test_mid_file_corruption_is_a_hard_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.create({"fingerprint": "abc"})
        with open(path, "a") as handle:
            handle.write("NOT JSON\n")
            handle.write('{"type": "result", "cell": 0}\n')
        with pytest.raises(JournalError, match="corrupt journal record"):
            CampaignJournal.load(path)

    def test_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(JournalError, match="cannot read journal"):
            CampaignJournal.load(str(tmp_path / "nope.jsonl"))

    def test_headerless_journal_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "result", "cell": 0}\n')
        with pytest.raises(JournalError, match="not a header"):
            CampaignJournal.load(path)

    def test_wrong_version_is_an_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type": "header", "version": 99}\n')
        with pytest.raises(JournalError, match="unsupported journal"):
            CampaignJournal.load(path)

    def test_fold_records_first_result_wins_and_counters(self):
        records = [
            {"type": "attempt", "cell": 0, "attempt": 1,
             "status": "crash", "detail": "x"},
            {"type": "result", "cell": 0, "attempt": 2,
             "result": {"v": "first"}},
            {"type": "result", "cell": 0, "attempt": 3,
             "result": {"v": "late-duplicate"}},
            {"type": "attempt", "cell": 1, "attempt": 1,
             "status": "timeout", "detail": "slow"},
            {"type": "attempt", "cell": 1, "attempt": 2,
             "status": "error", "detail": "boom"},
            {"type": "abandoned", "cell": 1, "attempts": 3,
             "reason": "gave up"},
        ]
        results, attempts, counters = fold_records(records)
        assert results == {0: {"v": "first"}}
        assert attempts == {0: 3, 1: 2}
        assert counters == {"timeouts": 1, "worker_crashes": 1,
                            "cell_errors": 1, "abandoned_seen": 1}


# ---------------------------------------------------------------------------
# Specs and cells
# ---------------------------------------------------------------------------

class TestSpec:
    def test_fingerprint_is_stable_and_discriminating(self):
        a1 = chaos_spec(10, seed=0)
        a2 = chaos_spec(10, seed=0)
        b = chaos_spec(10, seed=1)
        assert a1.fingerprint() == a2.fingerprint()
        assert a1.fingerprint() != b.fingerprint()
        assert a1.fingerprint() != bench_spec(10).fingerprint()

    def test_round_trips_through_json(self):
        spec = bench_spec(5, readers=2, scale=0.05, seed=3)
        again = CampaignSpec.from_jsonable(
            json.loads(json.dumps(spec.to_jsonable())))
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_rejects_bad_kind_and_zero_cells(self):
        with pytest.raises(ValueError, match="unknown campaign kind"):
            CampaignSpec(kind="nope", cells=1)
        with pytest.raises(ValueError, match="at least one cell"):
            CampaignSpec(kind="bench", cells=0)
        with pytest.raises(ValueError, match="unsupported campaign spec"):
            CampaignSpec.from_jsonable({"version": 99})

    def test_bench_cell_matches_serial_seed_spacing(self):
        from repro.bench.runner import run_nfs_once
        spec = bench_spec(3, readers=2, scale=0.03, seed=0)
        sharded = run_bench_cell(spec, 2)
        serial = run_nfs_once(TestbedConfig(seed=2000), nreaders=2,
                              scale=0.03)
        assert sharded["throughput_mb_s"] == serial.throughput_mb_s

    def test_chaos_cell_matches_run_chaos(self):
        from repro.chaos import (ChaosWorkload, ScheduleFuzzer,
                                 run_chaos)
        spec = chaos_spec(4, seed=0)
        cell = run_chaos_cell(spec, 1)
        config = TestbedConfig(num_clients=2, seed=1000,
                               mount_verifier_recovery=True)
        direct = run_chaos(config, ScheduleFuzzer(0).schedule(1),
                           ChaosWorkload())
        assert cell["fingerprint"] == direct.fingerprint
        assert cell["ok"] == direct.ok

    def test_run_spec_cell_dispatches_by_kind(self):
        spec = chaos_spec(2, seed=0)
        via_spec = run_spec_cell(spec.to_jsonable(), 0)
        direct = run_chaos_cell(spec, 0)
        assert via_spec == direct


# ---------------------------------------------------------------------------
# Worker loop (in-process: pytest-cov cannot trace forked children)
# ---------------------------------------------------------------------------

class TestWorker:
    def test_worker_main_runs_cells_until_poison_pill(self):
        import queue
        tasks, results = queue.Queue(), queue.Queue()
        tasks.put((3, 1))
        tasks.put((5, 2))
        tasks.put(None)
        worker_main(7, square_cell, tasks, results)
        assert results.get_nowait() == ("ok", 7, 3, 1, {"value": 9}, None)
        assert results.get_nowait() == ("ok", 7, 5, 2, {"value": 25},
                                        None)

    def test_worker_main_reports_errors_with_traceback(self):
        import queue
        tasks, results = queue.Queue(), queue.Queue()
        tasks.put((1, 1))
        tasks.put(None)
        worker_main(0, always_broken_cell, tasks, results)
        status, _, cell, attempt, payload, detail = results.get_nowait()
        assert status == "error" and cell == 1 and attempt == 1
        assert "permanently broken" in payload
        assert "RuntimeError" in detail

    def test_should_inject_kill_fires_exactly_once(self, tmp_path,
                                                   monkeypatch):
        flag = str(tmp_path / "flag")
        monkeypatch.setenv(KILL_CELL_ENV, "4")
        monkeypatch.setenv(KILL_FLAG_ENV, flag)
        assert not should_inject_kill(3)    # wrong cell
        assert should_inject_kill(4)        # fires, creates the flag
        assert os.path.exists(flag)
        assert not should_inject_kill(4)    # flag exists: never again

    def test_should_inject_kill_off_without_env(self, monkeypatch):
        monkeypatch.delenv(KILL_CELL_ENV, raising=False)
        monkeypatch.delenv(KILL_FLAG_ENV, raising=False)
        assert not should_inject_kill(0)


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------

def _options(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cell_timeout", 60.0)
    kwargs.setdefault("retry_backoff", 0.01)
    return CampaignOptions(**kwargs)


class TestOrchestrator:
    def test_options_validate(self):
        with pytest.raises(ValueError):
            CampaignOptions(workers=0)
        with pytest.raises(ValueError):
            CampaignOptions(max_attempts=0)
        with pytest.raises(ValueError):
            CampaignOptions(cell_timeout=0)

    def test_simple_campaign_folds_in_index_order(self, tmp_path):
        outcome = run_sharded(
            square_cell, 6, str(tmp_path / "j.jsonl"),
            {"fingerprint": "sq"}, options=_options())
        assert outcome.complete
        assert outcome.fold() == [{"value": i * i} for i in range(6)]
        assert outcome.coverage["done"] == 6
        assert outcome.coverage["abandoned"] == 0
        assert outcome.coverage["not_run"] == 0

    def test_gauges_report_campaign_health(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.create({"fingerprint": "g"})
        with journal:
            orchestrator = Orchestrator(square_cell, 3, journal,
                                        options=_options())
            gauges = orchestrator.registry.snapshot()["gauges"]
            assert gauges["campaign.cells_total"] == 3.0
            assert gauges["campaign.cells_pending"] == 3.0
            outcome = orchestrator.run()
        assert outcome.complete
        gauges = orchestrator.registry.snapshot()["gauges"]
        assert gauges["campaign.cells_done"] == 3.0
        assert gauges["campaign.cells_pending"] == 0.0

    def test_late_result_purges_queued_retry(self, tmp_path):
        # An "ok" that lands after its worker was timeout-killed must
        # also cancel the retry queued by the timeout, or the resolved
        # cell is pointlessly re-executed.
        from repro.campaign.orchestrator import _Worker

        class _ListQueue:
            def __init__(self):
                self.sent = []

            def put(self, item):
                self.sent.append(item)

        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.create({"fingerprint": "late"})
        with journal:
            orchestrator = Orchestrator(square_cell, 3, journal,
                                        options=_options())
            orchestrator._pending.append([5.0, 1])  # backoff retry
            orchestrator._record_result(1, 1, {"value": 1}, None, 0.0)
            assert [e[1] for e in orchestrator._pending] == [0, 2]
            # And dispatch never hands out a cell already resolved.
            orchestrator._pending.append([0.0, 1])
            queue = _ListQueue()
            orchestrator._workers[99] = _Worker(99, None, queue)
            orchestrator._dispatch_ready(10.0)
            assert 1 not in [e[1] for e in orchestrator._pending]
            assert [item[0] for item in queue.sent] == [0]

    def test_transient_error_retries_then_succeeds(self, tmp_path):
        import functools
        flag = str(tmp_path / "flaky-flag")
        outcome = run_sharded(
            functools.partial(flaky_cell, flag), 3,
            str(tmp_path / "j.jsonl"), {"fingerprint": "fl"},
            options=_options())
        assert outcome.complete
        assert outcome.fold() == [{"value": i} for i in range(3)]
        assert outcome.coverage["cell_errors"] == 1
        assert outcome.coverage["retried"] == 1
        assert outcome.outcomes[1].attempts == 2

    def test_retry_exhaustion_abandons_and_degrades(self, tmp_path):
        outcome = run_sharded(
            always_broken_cell, 3, str(tmp_path / "j.jsonl"),
            {"fingerprint": "br"},
            options=_options(max_attempts=2))
        assert not outcome.complete
        assert outcome.outcomes[1].status == "abandoned"
        assert "permanently broken" in outcome.outcomes[1].reason
        assert outcome.coverage["abandoned"] == 1
        assert outcome.coverage["done"] == 2
        assert outcome.coverage["cell_errors"] == 2
        # The healthy cells still folded.
        assert outcome.fold()[0] == {"value": 0}
        assert outcome.fold()[1] is None

    def test_timeout_kills_worker_and_retries(self, tmp_path):
        # Cell 2 sleeps 30s against a 1.5s timeout; max_attempts=1 so
        # it abandons instead of looping 30s per retry.
        outcome = run_sharded(
            slow_cell, 4, str(tmp_path / "j.jsonl"),
            {"fingerprint": "sl"},
            options=_options(cell_timeout=1.5, max_attempts=1))
        assert outcome.outcomes[2].status == "abandoned"
        assert "exceeded" in outcome.outcomes[2].reason
        assert outcome.coverage["timed_out"] == 1
        done = [o.index for o in outcome.outcomes if o.status == "done"]
        assert set(done) == {0, 1, 3}

    def test_worker_kill_injection_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_CELL_ENV, "2")
        monkeypatch.setenv(KILL_FLAG_ENV, str(tmp_path / "kill-flag"))
        outcome = run_sharded(
            square_cell, 5, str(tmp_path / "j.jsonl"),
            {"fingerprint": "ki"}, options=_options())
        assert outcome.complete
        assert outcome.coverage["worker_crashes"] >= 1
        assert outcome.coverage["abandoned"] == 0
        # The fold is identical to an undisturbed campaign's.
        monkeypatch.delenv(KILL_CELL_ENV)
        clean = run_sharded(
            square_cell, 5, str(tmp_path / "clean.jsonl"),
            {"fingerprint": "ki"}, options=_options())
        assert fold_json(outcome) == fold_json(clean)
        assert cells_csv(outcome) == cells_csv(clean)

    def test_wall_budget_emits_partial_resumable(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        outcome = run_sharded(
            slow_cell, 4, journal_path, {"fingerprint": "wb"},
            options=_options(workers=1, wall_budget=0.0,
                             cell_timeout=1.0, max_attempts=1))
        assert not outcome.complete
        assert outcome.coverage["not_run"] > 0
        # Resume with a sane budget finishes the fast cells.
        outcome2 = run_sharded(
            slow_cell, 4, journal_path, {"fingerprint": "wb"},
            options=_options(cell_timeout=1.5, max_attempts=1),
            resume=True)
        done = [o.index for o in outcome2.outcomes
                if o.status == "done"]
        assert set(done) == {0, 1, 3}

    def test_existing_journal_without_resume_is_refused(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        run_sharded(square_cell, 2, journal_path,
                    {"fingerprint": "x"}, options=_options())
        with pytest.raises(JournalError, match="pass --resume"):
            run_sharded(square_cell, 2, journal_path,
                        {"fingerprint": "x"}, options=_options())

    def test_foreign_journal_is_refused_even_with_resume(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        run_sharded(square_cell, 2, journal_path,
                    {"fingerprint": "campaign-a"}, options=_options())
        with pytest.raises(JournalError, match="refusing to mix"):
            run_sharded(square_cell, 2, journal_path,
                        {"fingerprint": "campaign-b"},
                        options=_options(), resume=True)

    def test_resume_of_missing_journal_starts_fresh(self, tmp_path):
        outcome = run_sharded(
            square_cell, 3, str(tmp_path / "new.jsonl"),
            {"fingerprint": "fresh"}, options=_options(), resume=True)
        assert outcome.complete

    def test_resume_skips_committed_cells(self, tmp_path):
        journal_path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(journal_path)
        journal.create({"fingerprint": "pre"})
        with journal:
            journal.append({"type": "result", "cell": 0, "attempt": 1,
                            "result": {"value": 0}})
            journal.append({"type": "result", "cell": 2, "attempt": 1,
                            "result": {"value": 4}})
        outcome = run_sharded(
            square_cell, 4, journal_path, {"fingerprint": "pre"},
            options=_options(), resume=True)
        assert outcome.complete
        assert outcome.fold() == [{"value": i * i} for i in range(4)]
        # Only cells 1 and 3 actually ran this session.
        loaded = CampaignJournal.load(journal_path)
        session_cells = [r["cell"] for r in loaded.records[2:]
                         if r["type"] == "result"]
        assert sorted(session_cells) == [1, 3]


# ---------------------------------------------------------------------------
# Drivers: bench and chaos campaigns end to end
# ---------------------------------------------------------------------------

SMALL = dict(readers=2, scale=0.03)


class TestDrivers:
    def test_bench_campaign_fold_matches_serial_bytes(self, tmp_path):
        from repro.bench.runner import (collect_throughputs, repeat,
                                        run_nfs_once)
        import functools
        spec = bench_spec(4, seed=0, **SMALL)
        outcome = run_spec_campaign(spec, str(tmp_path / "j.jsonl"),
                                    options=_options())
        record, throughputs = fold_bench(spec, outcome)
        run_once = functools.partial(run_nfs_once, nreaders=2,
                                     scale=0.03)
        serial_list = collect_throughputs(run_once,
                                          TestbedConfig(seed=0),
                                          runs=4, jobs=1)
        serial = repeat(run_once, TestbedConfig(seed=0), runs=4)
        assert json.dumps(throughputs) == json.dumps(serial_list)
        assert record["mean_mb_s"] == serial.mean
        assert record["std_mb_s"] == serial.std
        assert record["runs"] == 4

    def test_fold_bench_refuses_partial(self, tmp_path):
        spec = bench_spec(3, seed=0, **SMALL)
        outcome = run_sharded(
            always_broken_cell, 3, str(tmp_path / "j.jsonl"),
            {"fingerprint": spec.fingerprint()},
            options=_options(max_attempts=1))
        with pytest.raises(CampaignIncomplete) as info:
            fold_bench(spec, outcome)
        assert info.value.outcome is outcome
        assert "cells done" in str(info.value)

    def test_collect_throughputs_sharded_matches_serial(self):
        from repro.bench.runner import collect_throughputs, run_nfs_once
        import functools
        run_once = functools.partial(run_nfs_once, nreaders=2,
                                     scale=0.03)
        config = TestbedConfig(seed=11)
        serial = collect_throughputs(run_once, config, runs=3, jobs=1)
        sharded = collect_throughputs_sharded(run_once, config, runs=3,
                                              jobs=2)
        assert json.dumps(serial) == json.dumps(sharded)

    def test_chaos_campaign_dedupes_by_fingerprint(self, tmp_path):
        # recovery=False reintroduces the lost-acked-data bug: many
        # cells fail, most with the same fingerprint per schedule.
        spec = chaos_spec(6, recovery=False, seed=0)
        record, outcome = run_chaos_campaign(
            spec, str(tmp_path / "j.jsonl"), options=_options())
        assert outcome.complete
        assert record["runs"] == 6
        if not record["ok"]:
            fingerprints = [f["fingerprint"]
                            for f in record["distinct_failures"]]
            assert len(fingerprints) == len(set(fingerprints))
            assert record["failing_cells"] >= len(fingerprints)
            first = record["distinct_failures"][0]
            assert first["indices"][0] == first["first_index"]

    def test_chaos_campaign_bundles_one_per_fingerprint(self, tmp_path):
        spec = chaos_spec(6, recovery=False, seed=0)
        bundle_dir = str(tmp_path / "bundles")
        record, outcome = run_chaos_campaign(
            spec, str(tmp_path / "j.jsonl"), options=_options(),
            bundle_dir=bundle_dir)
        if record["ok"]:
            pytest.skip("no failures at this seed; dedupe untestable")
        from repro.chaos import replay_bundle
        bundles = sorted(os.listdir(bundle_dir))
        assert len(bundles) == len(record["distinct_failures"])
        for entry in record["distinct_failures"]:
            assert os.path.exists(entry["bundle"])
            assert entry["shrink_runs"] > 0
        # The first bundle replays bit-identically.
        outcome_ = replay_bundle(record["distinct_failures"][0]["bundle"])
        assert outcome_.reproduced

    def test_fold_chaos_tolerates_partial(self, tmp_path):
        spec = chaos_spec(3, seed=0)
        outcome = run_sharded(
            chaos_shaped_broken_cell, 3, str(tmp_path / "j.jsonl"),
            {"fingerprint": spec.fingerprint()},
            options=_options(max_attempts=1))
        record = fold_chaos(spec, outcome)
        assert record["runs"] == 2  # only judged cells count

    def test_bench_campaign_streams_into_history(self, tmp_path):
        from repro.diagnose import load_history
        from repro.campaign import run_bench_campaign
        spec = bench_spec(2, seed=0, **SMALL)
        history = str(tmp_path / "history.jsonl")
        record, outcome = run_bench_campaign(
            spec, str(tmp_path / "j.jsonl"), options=_options(),
            history=history)
        stored = load_history(history)
        assert stored == [record]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReport:
    def test_write_report_writes_all_four_files(self, tmp_path):
        outcome = run_sharded(
            square_cell, 3, str(tmp_path / "j.jsonl"),
            {"fingerprint": "rep"}, options=_options())
        paths = write_report(str(tmp_path / "report"), outcome,
                             "unit campaign", extra={"verb": "test"})
        for path in paths.values():
            assert os.path.exists(path)
        fold = json.loads(open(paths["fold"]).read())
        assert fold["cells"] == [{"value": i * i} for i in range(3)]
        coverage = json.loads(open(paths["coverage"]).read())
        assert coverage["verb"] == "test"
        html_text = open(paths["html"]).read()
        assert "complete" in html_text
        csv_text = open(paths["cells"]).read()
        assert csv_text.splitlines()[0] == "cell,status,value"

    def test_partial_report_is_flagged(self, tmp_path):
        outcome = run_sharded(
            always_broken_cell, 2, str(tmp_path / "j.jsonl"),
            {"fingerprint": "p"}, options=_options(max_attempts=1))
        html_text = __import__("repro.campaign.report",
                               fromlist=["report_html"]) \
            .report_html(outcome, "partial campaign")
        assert "PARTIAL" in html_text
        assert "abandoned" in html_text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCampaignCli:
    def test_campaign_chaos_json(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["campaign", "chaos", "--budget", "3", "--jobs",
                     "2", "--json"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        payload = json.loads(out)
        assert payload["coverage"]["done"] == 3
        assert payload["record"]["verb"] == "chaos-campaign"

    def test_campaign_bench_json_with_report(self, tmp_path, capsys):
        from repro.cli import main
        report = str(tmp_path / "rep")
        code = main(["campaign", "bench", "--runs", "2", "--readers",
                     "2", "--scale", "0.03", "--jobs", "2", "--json",
                     "--report", report])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["record"]["runs"] == 2
        assert os.path.exists(payload["report"])
        assert os.path.exists(os.path.join(report, "fold.json"))

    def test_campaign_refuses_journal_reuse(self, tmp_path, capsys):
        from repro.cli import main
        journal = str(tmp_path / "j.jsonl")
        assert main(["campaign", "chaos", "--budget", "2", "--journal",
                     journal, "--json"]) in (0, 1)
        code = main(["campaign", "chaos", "--budget", "2", "--journal",
                     journal, "--json"])
        err = capsys.readouterr().err
        assert code == 3
        assert "pass --resume" in err

    def test_campaign_resume_is_idempotent(self, tmp_path, capsys):
        from repro.cli import main
        journal = str(tmp_path / "j.jsonl")
        assert main(["campaign", "chaos", "--budget", "2", "--journal",
                     journal, "--json"]) in (0, 1)
        first = json.loads(capsys.readouterr().out)
        code = main(["campaign", "chaos", "--budget", "2", "--journal",
                     journal, "--resume", "--json"])
        second = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert second["record"] == first["record"]

    def test_chaos_fuzz_sharded_matches_serial_verdicts(self, tmp_path,
                                                        capsys):
        from repro.cli import main
        code = main(["chaos", "fuzz", "--budget", "4", "--json"])
        serial = json.loads(capsys.readouterr().out)
        code2 = main(["chaos", "fuzz", "--budget", "4", "--jobs", "2",
                      "--json"])
        sharded = json.loads(capsys.readouterr().out)
        assert code == code2
        record = sharded["record"]
        assert record["runs"] == serial["runs"]
        serial_failures = {run["fingerprint"]
                           for run in serial["failures"]}
        sharded_cells = sum(f["occurrences"]
                            for f in record["distinct_failures"])
        assert sharded_cells == len(serial["failures"])
        assert {f["fingerprint"] for f in record["distinct_failures"]} \
            <= serial_failures or not serial_failures


# ---------------------------------------------------------------------------
# Crash-mid-campaign recovery (subprocess: real SIGKILL of the
# orchestrator itself, then --resume, then byte-compare the fold)
# ---------------------------------------------------------------------------

def _campaign_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(KILL_CELL_ENV, None)
    env.pop(KILL_FLAG_ENV, None)
    return env


def _count_results(journal_path):
    try:
        with open(journal_path) as handle:
            return sum(1 for line in handle
                       if '"type":"result"' in line
                       or '"type": "result"' in line)
    except OSError:
        return 0


class TestOrchestratorCrashRecovery:
    BUDGET = 8

    def _args(self, journal, report, resume=False):
        args = [sys.executable, "-m", "repro", "campaign", "chaos",
                "--budget", str(self.BUDGET), "--jobs", "2",
                "--journal", journal, "--report", report, "--json"]
        if resume:
            args.append("--resume")
        return args

    def test_sigkilled_orchestrator_resumes_byte_identical(self,
                                                           tmp_path):
        env = _campaign_env()
        ref_report = str(tmp_path / "ref")
        done = subprocess.run(
            self._args(str(tmp_path / "ref.jsonl"), ref_report),
            env=env, capture_output=True, text=True, timeout=300)
        assert done.returncode in (0, 1), done.stderr

        journal = str(tmp_path / "j.jsonl")
        victim = subprocess.Popen(
            self._args(journal, str(tmp_path / "unused")), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline:
            if _count_results(journal) >= 2:
                break
            if victim.poll() is not None:
                pytest.fail("campaign finished before it could be "
                            "killed; raise BUDGET")
            time.sleep(0.05)
        else:
            victim.kill()
            pytest.fail("journal never accumulated results")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        resumed_report = str(tmp_path / "resumed")
        resumed = subprocess.run(
            self._args(journal, resumed_report, resume=True),
            env=env, capture_output=True, text=True, timeout=300)
        assert resumed.returncode in (0, 1), resumed.stderr
        payload = json.loads(resumed.stdout)
        assert payload["coverage"]["abandoned"] == 0
        assert payload["coverage"]["done"] == self.BUDGET

        for name in ("fold.json", "cells.csv"):
            with open(os.path.join(ref_report, name), "rb") as ref, \
                    open(os.path.join(resumed_report, name), "rb") as res:
                assert ref.read() == res.read(), \
                    f"{name} differs after crash + resume"


# ---------------------------------------------------------------------------
# Atomic history-store append (satellite: PR-4 store hardening)
# ---------------------------------------------------------------------------

class TestAtomicHistory:
    def test_append_creates_and_extends(self, tmp_path):
        from repro.diagnose import append_history, load_history
        path = str(tmp_path / "deep" / "history.jsonl")
        append_history(path, {"verb": "bench", "mean_mb_s": 1.0})
        append_history(path, {"verb": "bench", "mean_mb_s": 2.0})
        records = load_history(path)
        assert [r["mean_mb_s"] for r in records] == [1.0, 2.0]
        assert not os.path.exists(path + ".tmp")

    def test_append_repairs_missing_trailing_newline(self, tmp_path):
        from repro.diagnose import append_history, load_history
        path = str(tmp_path / "history.jsonl")
        with open(path, "w") as handle:
            handle.write('{"verb": "bench", "mean_mb_s": 1.0}')  # torn
        append_history(path, {"verb": "bench", "mean_mb_s": 2.0})
        records = load_history(path)
        assert [r["mean_mb_s"] for r in records] == [1.0, 2.0]

    def test_concurrent_appenders_lose_no_records(self, tmp_path):
        # The rename protocol is a read-modify-write; without the
        # sidecar lock two concurrent bench runs can silently drop
        # each other's records.
        import multiprocessing
        from repro.diagnose import load_history
        path = str(tmp_path / "history.jsonl")
        ctx = multiprocessing.get_context("fork")
        processes = [ctx.Process(target=_history_hammer,
                                 args=(path, writer, 10))
                     for writer in range(4)]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        records = load_history(path)
        assert len(records) == 40
        for writer in range(4):
            mine = sorted(r["n"] for r in records
                          if r["writer"] == writer)
            assert mine == list(range(10))
