"""Tests for the chaos engine: fuzzer, oracles, shrinker, bundles."""

import json

import pytest

from repro.chaos import (ChaosSchedule, ChaosWorkload, FaultEvent,
                         ORACLE_NAMES, OracleInputs, ScheduleFuzzer,
                         evaluate_oracles, failed_oracle_names,
                         read_bundle, replay_bundle, run_campaign,
                         run_chaos, shrink, write_bundle)
from repro.host.testbed import TestbedConfig

#: A crash late enough in the write phase that blocks acknowledged
#: before it are (with seed 7) never rewritten afterwards — the
#: schedule that separates a recovering client from a trusting one.
LATE_CRASH = ChaosSchedule(events=(FaultEvent("crash", 6.0, 1.5),))


def _config(recovery: bool = True, **kwargs) -> TestbedConfig:
    kwargs.setdefault("transport", "udp")
    kwargs.setdefault("num_clients", 2)
    kwargs.setdefault("seed", 7)
    return TestbedConfig(mount_verifier_recovery=recovery, **kwargs)


# ---------------------------------------------------------------------------
# Schedules and the fuzzer
# ---------------------------------------------------------------------------

class TestSchedules:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", 1.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("crash", -1.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("crash", 1.0, 0.0)

    def test_fuzzer_is_deterministic_per_index(self):
        a = ScheduleFuzzer(42).schedule(3)
        b = ScheduleFuzzer(42).schedule(3)
        assert a == b
        assert ScheduleFuzzer(42).schedule(4) != a
        assert ScheduleFuzzer(43).schedule(3) != a

    def test_fuzzer_index_independent_of_budget(self):
        fuzzer = ScheduleFuzzer(0)
        from_iter = list(fuzzer.schedules(5))
        assert from_iter[4] == ScheduleFuzzer(0).schedule(4)

    def test_json_round_trip_is_exact(self):
        for index in range(10):
            schedule = ScheduleFuzzer(9, max_events=5).schedule(index)
            blob = json.dumps(schedule.to_jsonable())
            assert ChaosSchedule.from_jsonable(
                json.loads(blob)) == schedule

    def test_to_fault_spec_mapping(self):
        schedule = ChaosSchedule(events=(
            FaultEvent("crash", 2.0, 1.0),
            FaultEvent("stall", 4.0, 0.5),
            FaultEvent("partition", 5.0, 2.0),
            FaultEvent("loss_burst", 8.0, 3.0, rate=0.4),
            FaultEvent("disk_error", 1.0, 4.0, rate=0.005),
        ))
        spec = schedule.to_fault_spec()
        assert spec.server.crash_times == (2.0,)
        assert spec.server.restart_delay == 1.0
        assert spec.server.stall_times == (4.0,)
        assert spec.network.partitions == ((5.0, 2.0),)
        assert spec.network.burst_windows == ((8.0, 3.0, 0.4),)
        assert spec.disk.media_error_rate == 0.005

    def test_empty_schedule_compiles_to_clean_spec(self):
        assert not ChaosSchedule().to_fault_spec().any_faults


# ---------------------------------------------------------------------------
# Oracles (unit level)
# ---------------------------------------------------------------------------

class TestOracles:
    def test_liveness_failure_undecides_data_oracle(self):
        inputs = OracleInputs(
            processes=[("worker0", False)],
            journal_durable={("f", 0): 1}, final_reads={})
        oracles = evaluate_oracles(inputs)
        by_name = {o.name: o for o in oracles}
        assert not by_name["liveness"].passed
        assert not by_name["no_lost_acked_data"].evaluated
        assert failed_oracle_names(oracles) == ("liveness",)

    def test_lost_data_and_duplicates_reported_in_order(self):
        inputs = OracleInputs(
            processes=[("worker0", True)],
            journal_durable={("f", 0): 2}, final_reads={("f", 0): 1},
            ryw_violations=["stale"], duplicate_executions=3)
        names = failed_oracle_names(evaluate_oracles(inputs))
        assert names == ("no_lost_acked_data", "read_your_writes",
                         "dupreq_idempotency")
        assert tuple(n for n in ORACLE_NAMES if n in names) == names


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class TestEngine:
    def test_clean_run_passes_all_oracles(self):
        result = run_chaos(_config(), ChaosSchedule())
        assert result.ok
        assert all(o.evaluated and o.passed for o in result.oracles)
        assert result.counters["writes"] > 0
        assert result.counters["commits"] > 0
        assert result.counters["stable_writes"] > 0

    def test_crash_recovery_keeps_oracles_green(self):
        result = run_chaos(_config(), LATE_CRASH)
        assert result.ok
        assert result.counters["server_boot_epoch"] == 1
        assert result.counters["verifier_resends"] > 0

    def test_without_recovery_acked_data_is_lost(self):
        result = run_chaos(_config(recovery=False), LATE_CRASH)
        assert "no_lost_acked_data" in result.failed_oracles
        assert result.counters["verifier_resends"] == 0

    def test_fingerprint_is_deterministic(self):
        a = run_chaos(_config(), LATE_CRASH)
        b = run_chaos(_config(), LATE_CRASH)
        assert a.fingerprint == b.fingerprint
        assert json.dumps(a.to_jsonable(), sort_keys=True) == \
            json.dumps(b.to_jsonable(), sort_keys=True)

    def test_fingerprint_depends_on_schedule(self):
        a = run_chaos(_config(), ChaosSchedule())
        b = run_chaos(_config(), LATE_CRASH)
        assert a.fingerprint != b.fingerprint

    @pytest.mark.parametrize("transport,heuristic", [
        ("udp", "default"), ("tcp", "cursor")])
    def test_small_campaign_all_green(self, transport, heuristic):
        config = TestbedConfig(transport=transport,
                               server_heuristic=heuristic,
                               num_clients=2, seed=0)
        runs = run_campaign(config, ScheduleFuzzer(0), budget=5)
        assert len(runs) == 5
        assert all(run.result.ok for run in runs), \
            [run.result.failed_oracles for run in runs]


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

class TestShrinker:
    #: The late crash plus bystander events that contribute nothing to
    #: the data loss.  The bystanders sit *after* the crash: an earlier
    #: stall would shift every subsequent write, changing which blocks
    #: the crash catches uncommitted — bystanders must perturb the
    #: outcome's account, not its cause.
    NOISY = ChaosSchedule(events=(
        FaultEvent("crash", 6.0, 1.5),
        FaultEvent("stall", 13.0, 0.5),
        FaultEvent("loss_burst", 15.0, 2.0, rate=0.3),
    ))

    def test_shrinks_to_single_crash_event(self):
        config = _config(recovery=False)
        assert "no_lost_acked_data" in run_chaos(
            config, self.NOISY).failed_oracles
        shrunk = shrink(config, self.NOISY, "no_lost_acked_data")
        assert shrunk.events == 1
        assert shrunk.schedule.events[0].kind == "crash"
        # The minimal schedule still fails the target oracle.
        assert "no_lost_acked_data" in run_chaos(
            config, shrunk.schedule).failed_oracles

    def test_shrinking_is_deterministic(self):
        config = _config(recovery=False)
        a = shrink(config, self.NOISY, "no_lost_acked_data")
        b = shrink(config, self.NOISY, "no_lost_acked_data")
        assert a.schedule == b.schedule
        assert a.runs == b.runs


# ---------------------------------------------------------------------------
# Bundles and replay
# ---------------------------------------------------------------------------

class TestBundles:
    def test_bundle_round_trip_reproduces(self, tmp_path):
        config = _config(recovery=False)
        result = run_chaos(config, LATE_CRASH)
        assert not result.ok
        path = str(tmp_path / "bundle.json")
        write_bundle(path, config, ChaosWorkload(), LATE_CRASH, result)
        data = read_bundle(path)
        assert data["version"] == 1
        assert data["config"]["mount_verifier_recovery"] is False
        outcome = replay_bundle(path)
        assert outcome.reproduced
        assert outcome.result.fingerprint == result.fingerprint

    def test_replay_output_is_byte_identical(self, tmp_path):
        config = _config(recovery=False)
        result = run_chaos(config, LATE_CRASH)
        path = str(tmp_path / "bundle.json")
        write_bundle(path, config, ChaosWorkload(), LATE_CRASH, result)
        first = json.dumps(replay_bundle(path).to_jsonable(),
                           sort_keys=True)
        second = json.dumps(replay_bundle(path).to_jsonable(),
                            sort_keys=True)
        assert first == second

    def test_stale_bundle_does_not_reproduce(self, tmp_path):
        config = _config(recovery=False)
        result = run_chaos(config, LATE_CRASH)
        path = str(tmp_path / "bundle.json")
        data = write_bundle(path, config, ChaosWorkload(), LATE_CRASH,
                            result)
        data["fingerprint"] = "0" * 64
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert not replay_bundle(path).reproduced

    def test_rejects_wrong_kind_and_version(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"kind": "not-a-bundle"}, handle)
        with pytest.raises(ValueError):
            read_bundle(path)
        with open(path, "w") as handle:
            json.dump({"kind": "chaos-bundle", "version": 99}, handle)
        with pytest.raises(ValueError):
            read_bundle(path)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestChaosCli:
    def test_fuzz_green_campaign_exits_zero(self, capsys):
        from repro.cli import main
        code = main(["chaos", "fuzz", "--budget", "3", "--seed", "0",
                     "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["ok"] and record["runs"] == 3

    def test_fuzz_failure_shrinks_and_bundles(self, tmp_path, capsys):
        from repro.cli import main
        bundle_dir = str(tmp_path / "bundles")
        code = main(["chaos", "fuzz", "--budget", "4", "--seed", "0",
                     "--no-recovery", "--bundle-dir", bundle_dir,
                     "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 1
        assert record["failures"]
        failure = record["failures"][0]
        assert failure["bundle"] is not None
        # The written bundle replays to the same failure, and the CLI
        # replay verb agrees (exit 0 = reproduced).
        capsys.readouterr()
        assert main(["chaos", "replay", failure["bundle"],
                     "--json"]) == 0
        replay = json.loads(capsys.readouterr().out)
        assert replay["reproduced"]

    def test_replay_missing_bundle_exits_three(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["chaos", "replay", str(tmp_path / "nope.json")])
        err = capsys.readouterr().err
        assert code == 3
        assert "cannot read bundle" in err
        assert "Traceback" not in err

    def test_replay_truncated_bundle_exits_three(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "chaos-bundle", "version": 1, "conf')
        code = main(["chaos", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 3
        assert "truncated or corrupt" in err

    def test_replay_incomplete_bundle_exits_three(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"kind": "chaos-bundle",
                                    "version": 1, "config": {}}))
        code = main(["chaos", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 3
        assert "missing required field" in err

    def test_replay_wrong_version_exits_three(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"kind": "chaos-bundle",
                                    "version": 99}))
        code = main(["chaos", "replay", str(path)])
        err = capsys.readouterr().err
        assert code == 3
        assert "unsupported bundle version" in err
