"""The metadata chaos campaign end to end.

Engine-level: a seeded metadata campaign with crash schedules stays
green under the intent log; the ack-before-intent bug hook is caught by
the no-lost-acked-metadata oracle, shrinks to a minimal schedule, and
round-trips through a version-2 bundle bit-identically.  A checked-in
version-1 bundle pins the frozen write-workload format: `chaos replay`
must keep reproducing it byte for byte.  CLI-level: the `--workload`
flag routes the kinds, defaults to `write`, and exit codes are
unchanged.
"""

import json
import os

import pytest

from repro.chaos import (ChaosSchedule, ChaosWorkload, FaultEvent,
                         METADATA_ORACLE_NAMES, MetadataWorkload,
                         MixedWorkload, ScheduleFuzzer, read_bundle,
                         replay_bundle, run_campaign, run_chaos,
                         shrink, workload_from_jsonable, write_bundle)
from repro.chaos.bundle import (BUNDLE_VERSION, BUNDLE_VERSION_META,
                                bundle_dict)
from repro.host.testbed import TestbedConfig

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

LATE_CRASH = ChaosSchedule(events=(FaultEvent("crash", 6.0, 1.5),))


def _config(**kwargs) -> TestbedConfig:
    kwargs.setdefault("num_clients", 2)
    kwargs.setdefault("seed", 0)
    return TestbedConfig(**kwargs)


class TestWorkloadKinds:
    def test_metadata_jsonable_round_trip(self):
        workload = MetadataWorkload(dirs=3, ops_per_client=10)
        data = workload.to_jsonable()
        assert data["kind"] == "metadata"
        assert workload_from_jsonable(data) == workload

    def test_mixed_jsonable_round_trip(self):
        workload = MixedWorkload()
        data = workload.to_jsonable()
        assert data["kind"] == "mixed"
        assert workload_from_jsonable(data) == workload

    def test_kindless_data_is_the_write_workload(self):
        data = ChaosWorkload().to_jsonable()
        assert "kind" not in data
        assert workload_from_jsonable(data) == ChaosWorkload()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            workload_from_jsonable({"kind": "quantum"})

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            MetadataWorkload(create_fraction=0.8, remove_fraction=0.3)


class TestMetadataEngine:
    def test_clean_run_passes_all_oracles(self):
        result = run_chaos(_config(), ChaosSchedule(),
                           MetadataWorkload())
        assert result.ok
        assert tuple(o.name for o in result.oracles) == \
            METADATA_ORACLE_NAMES
        assert result.counters["creates"] > 0

    def test_crash_recovery_keeps_oracles_green(self):
        result = run_chaos(_config(), LATE_CRASH, MetadataWorkload())
        assert result.ok, result.failed_oracles
        assert result.counters["server_boot_epoch"] == 1
        assert result.counters["recovery_fscks"] == 1
        assert result.counters["meta_intents"] > 0

    def test_ack_before_intent_is_caught(self):
        result = run_chaos(_config(meta_ack_before_intent=True),
                           LATE_CRASH, MetadataWorkload())
        assert "no_lost_acked_metadata" in result.failed_oracles
        assert result.counters["meta_undone"] > 0
        assert result.counters["meta_commits"] == 0

    def test_fingerprint_is_deterministic(self):
        a = run_chaos(_config(), LATE_CRASH, MetadataWorkload())
        b = run_chaos(_config(), LATE_CRASH, MetadataWorkload())
        assert a.fingerprint == b.fingerprint

    def test_mixed_run_reports_both_oracle_families(self):
        result = run_chaos(_config(), LATE_CRASH, MixedWorkload())
        names = tuple(o.name for o in result.oracles)
        assert names.count("liveness") == 1
        assert "no_lost_acked_data" in names
        assert "no_lost_acked_metadata" in names
        assert result.ok, result.failed_oracles

    def test_write_fingerprint_ignores_metadata_machinery(self):
        """A pure write run's payload has no metadata keys: the v1
        fingerprint contract is preserved."""
        result = run_chaos(_config(), LATE_CRASH)
        assert "creates" not in result.counters
        assert "meta_intents" not in result.counters
        names = tuple(o.name for o in result.oracles)
        assert "no_lost_acked_metadata" not in names

    def test_small_metadata_campaign_all_green(self):
        runs = run_campaign(_config(), ScheduleFuzzer(3), budget=4,
                            workload=MetadataWorkload())
        assert all(run.result.ok for run in runs), \
            [run.result.failed_oracles for run in runs]


class TestMetadataShrinkAndBundle:
    def test_failure_shrinks_and_bundles_v2(self, tmp_path):
        config = _config(meta_ack_before_intent=True)
        workload = MetadataWorkload()
        noisy = ChaosSchedule(events=(
            FaultEvent("crash", 6.0, 1.5),
            FaultEvent("stall", 13.0, 0.5),
            FaultEvent("loss_burst", 15.0, 2.0, rate=0.3),
        ))
        first = run_chaos(config, noisy, workload)
        assert "no_lost_acked_metadata" in first.failed_oracles
        shrunk = shrink(config, noisy, "no_lost_acked_metadata",
                        workload=workload)
        assert len(shrunk.schedule.events) == 1
        assert shrunk.schedule.events[0].kind == "crash"

        final = run_chaos(config, shrunk.schedule, workload)
        path = str(tmp_path / "meta.json")
        data = write_bundle(path, config, workload, shrunk.schedule,
                            final)
        assert data["version"] == BUNDLE_VERSION_META
        assert data["config"]["meta_ack_before_intent"] is True
        outcome = replay_bundle(path)
        assert outcome.reproduced

    def test_write_workload_still_bundles_v1(self, tmp_path):
        config = _config(mount_verifier_recovery=False)
        result = run_chaos(config, LATE_CRASH)
        data = bundle_dict(config, ChaosWorkload(), LATE_CRASH, result)
        assert data["version"] == BUNDLE_VERSION
        assert "metadata_journal" not in data["config"]

    def test_v1_regression_bundle_replays_byte_identically(self):
        """The checked-in pre-metadata bundle: proof the write
        workload's fingerprint payload did not move."""
        path = os.path.join(DATA_DIR, "chaos-v1-regression.json")
        data = read_bundle(path)
        assert data["version"] == BUNDLE_VERSION
        outcome = replay_bundle(path)
        assert outcome.reproduced, (
            outcome.result.fingerprint, outcome.expected_fingerprint)


class TestMetadataCli:
    def test_fuzz_metadata_green(self, capsys):
        from repro.cli import main
        code = main(["chaos", "fuzz", "--workload", "metadata",
                     "--budget", "2", "--seed", "3", "--horizon", "12",
                     "--max-events", "2", "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["ok"] is True
        assert record["workload"] == "metadata"

    def test_fuzz_default_workload_is_write(self, capsys):
        from repro.cli import main
        code = main(["chaos", "fuzz", "--budget", "2", "--seed", "0",
                     "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 0
        assert record["workload"] == "write"
        assert record["ack_before_intent"] is False

    def test_fuzz_ack_before_intent_fails_and_bundles(self, tmp_path,
                                                      capsys):
        from repro.cli import main
        code = main(["chaos", "fuzz", "--workload", "metadata",
                     "--ack-before-intent", "--budget", "4",
                     "--seed", "3", "--horizon", "12",
                     "--max-events", "2",
                     "--bundle-dir", str(tmp_path), "--json"])
        record = json.loads(capsys.readouterr().out)
        assert code == 1
        assert not record["ok"]
        failure = record["failures"][0]
        assert "no_lost_acked_metadata" in failure["failed_oracles"]
        assert failure["bundle"] is not None

        capsys.readouterr()
        assert main(["chaos", "replay", failure["bundle"],
                     "--json"]) == 0
        replay = json.loads(capsys.readouterr().out)
        assert replay["reproduced"] is True
