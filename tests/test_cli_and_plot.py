"""Tests for the CLI and the ASCII plotter."""

import pytest

from repro.cli import build_parser, main
from repro.stats import Series, SeriesSet, render_plot, summarize


def make_figure():
    figure = SeriesSet("Test figure", xlabel="readers")
    a = figure.new_series("alpha")
    for x, value in ((1, 10.0), (2, 20.0), (4, 15.0)):
        a.add(x, summarize([value]))
    b = figure.new_series("beta")
    for x, value in ((1, 5.0), (2, 5.0), (4, 5.0)):
        b.add(x, summarize([value]))
    return figure


class TestPlot:
    def test_contains_title_axis_and_legend(self):
        text = render_plot(make_figure())
        assert "Test figure" in text
        assert "readers" in text
        assert "o alpha" in text
        assert "x beta" in text

    def test_markers_plotted(self):
        text = render_plot(make_figure())
        assert text.count("o") >= 3 + 1   # points + legend
        assert text.count("x") >= 3 + 1

    def test_x_ticks_present(self):
        text = render_plot(make_figure())
        assert " 1" in text and "4" in text

    def test_y_scale_labels(self):
        text = render_plot(make_figure())
        assert "21.0" in text     # 20 * 1.05
        assert "0.0" in text

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            render_plot(make_figure(), width=4, height=2)

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError):
            render_plot(SeriesSet("empty"))

    def test_custom_y_range(self):
        text = render_plot(make_figure(), y_max=100.0)
        assert "100.0" in text
        with pytest.raises(ValueError):
            render_plot(make_figure(), y_min=10.0, y_max=5.0)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.experiment == "fig1"
        assert args.scale == 0.125
        assert args.runs == 3
        assert not args.plot

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out and "xlossy" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys):
        code = main(["fig8", "--runs", "1", "--scale", "0.03125",
                     "--no-std", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stride" in out.lower()
        assert "paper claim" in out
        assert "|" in out            # the plot was drawn


class TestBenchVerb:
    def test_json_output_parses(self, capsys):
        import json
        code = main(["bench", "--readers", "1", "--runs", "2",
                     "--scale", "0.02", "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["verb"] == "bench"
        assert record["runs"] == 2
        assert len(record["throughputs_mb_s"]) == 2
        assert record["mean_mb_s"] > 0

    def test_jobs_do_not_change_the_output(self, capsys):
        args = ["bench", "--readers", "1", "--runs", "2",
                "--scale", "0.02", "--json"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Only the echoed jobs count may differ.
        assert parallel.replace('"jobs": 2', '"jobs": 1') == serial

    def test_prose_output(self, capsys):
        assert main(["bench", "--readers", "1", "--runs", "1",
                     "--scale", "0.02"]) == 0
        assert "MB/s" in capsys.readouterr().out


class TestReplayVerb:
    def test_capture_then_replay_one_invocation(self, tmp_path, capsys):
        """A UDP/default capture replays against TCP/cursors/improved."""
        import json
        trace_path = str(tmp_path / "t.jsonl")
        code = main(["replay", "--capture", trace_path,
                     "--replay", trace_path,
                     "--bench-scale", "0.02", "--readers", "2",
                     "--target-transport", "tcp",
                     "--target-heuristic", "cursor",
                     "--target-nfsheur", "improved",
                     "--clients", "3", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["clients"] == 3
        assert summary["ops_completed"] > 0
        assert summary["errors"] == 0

    def test_replay_is_deterministic_across_invocations(
            self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.jsonl")
        assert main(["replay", "--capture", trace_path,
                     "--bench-scale", "0.02"]) == 0
        capsys.readouterr()
        args = ["replay", "--replay", trace_path, "--mode", "open",
                "--scale", "2.0", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_needs_capture_or_replay(self, capsys):
        assert main(["replay"]) == 2
        assert "need --capture" in capsys.readouterr().err

    def test_missing_trace_file_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.jsonl")
        assert main(["replay", "--replay", missing]) == 2
        assert "replay:" in capsys.readouterr().err

    def test_corrupt_trace_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["replay", "--replay", str(bad)]) == 2
        assert "replay:" in capsys.readouterr().err
