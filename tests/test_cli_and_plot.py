"""Tests for the CLI and the ASCII plotter."""

import pytest

from repro.cli import build_parser, main
from repro.stats import Series, SeriesSet, render_plot, summarize


def make_figure():
    figure = SeriesSet("Test figure", xlabel="readers")
    a = figure.new_series("alpha")
    for x, value in ((1, 10.0), (2, 20.0), (4, 15.0)):
        a.add(x, summarize([value]))
    b = figure.new_series("beta")
    for x, value in ((1, 5.0), (2, 5.0), (4, 5.0)):
        b.add(x, summarize([value]))
    return figure


class TestPlot:
    def test_contains_title_axis_and_legend(self):
        text = render_plot(make_figure())
        assert "Test figure" in text
        assert "readers" in text
        assert "o alpha" in text
        assert "x beta" in text

    def test_markers_plotted(self):
        text = render_plot(make_figure())
        assert text.count("o") >= 3 + 1   # points + legend
        assert text.count("x") >= 3 + 1

    def test_x_ticks_present(self):
        text = render_plot(make_figure())
        assert " 1" in text and "4" in text

    def test_y_scale_labels(self):
        text = render_plot(make_figure())
        assert "21.0" in text     # 20 * 1.05
        assert "0.0" in text

    def test_tiny_area_rejected(self):
        with pytest.raises(ValueError):
            render_plot(make_figure(), width=4, height=2)

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError):
            render_plot(SeriesSet("empty"))

    def test_custom_y_range(self):
        text = render_plot(make_figure(), y_max=100.0)
        assert "100.0" in text
        with pytest.raises(ValueError):
            render_plot(make_figure(), y_min=10.0, y_max=5.0)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.experiment == "fig1"
        assert args.scale == 0.125
        assert args.runs == 3
        assert not args.plot

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out and "xlossy" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys):
        code = main(["fig8", "--runs", "1", "--scale", "0.03125",
                     "--no-std", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stride" in out.lower()
        assert "paper claim" in out
        assert "|" in out            # the plot was drawn
