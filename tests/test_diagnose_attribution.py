"""Critical-path attribution: exclusive times, splits, dominance.

Synthetic span trees with hand-computable answers: the exclusive-time
pass must charge every layer exactly its uncovered wall time (children
clipped to the parent, overlaps unioned), the queue/service split must
follow the layer's nature (pure-queue layers vs histogram-refined
pools), and the dominant-bottleneck election must ignore the benchmark
driver and break ties toward the deeper layer.
"""

import pytest

from repro.diagnose import attribute_runs, dominant_by_config
from repro.diagnose.attribution import dominant_layer, exclusive_times
from repro.obs.span import Span


def make_span(span_id, cat, start, end, parent=None, detached=False,
              run=0):
    span = Span(None, span_id, cat, cat, parent, start, detached,
                {"run": run})
    span.end = end
    return span


class TestExclusiveTimes:
    def test_leaf_keeps_its_whole_duration(self):
        spans = [make_span(1, "bench", 0.0, 4.0)]
        assert exclusive_times(spans)[1] == pytest.approx(4.0)

    def test_overlapping_children_are_unioned_not_summed(self):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "client.vnode", 2.0, 5.0, parent=1),
                 make_span(3, "client.vnode", 4.0, 7.0, parent=1)]
        exclusive = exclusive_times(spans)
        # Children cover [2, 7) once, not 3 + 3 seconds.
        assert exclusive[1] == pytest.approx(5.0)
        assert exclusive[2] == pytest.approx(3.0)
        assert exclusive[3] == pytest.approx(3.0)

    def test_detached_child_is_clipped_to_the_parent(self):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "client.nfsiod", 8.0, 14.0, parent=1,
                           detached=True)]
        exclusive = exclusive_times(spans)
        assert exclusive[1] == pytest.approx(8.0)   # covered [8, 10) only
        assert exclusive[2] == pytest.approx(6.0)   # overhang is its own

    def test_nested_chain_partitions_the_root(self):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "net.rpc", 1.0, 9.0, parent=1),
                 make_span(3, "kernel.bufq", 2.0, 6.0, parent=2),
                 make_span(4, "disk.mechanics", 6.0, 8.0, parent=2)]
        exclusive = exclusive_times(spans)
        assert sum(exclusive.values()) == pytest.approx(10.0)


class TestAttributeRuns:
    def run_table(self, merged=None):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "server.nfsd", 1.0, 7.0, parent=1),
                 make_span(3, "kernel.bufq", 2.0, 6.0, parent=2)]
        return attribute_runs([spans], merged)

    def test_wall_times_partition_end_to_end(self):
        table, end_to_end, _dominant = self.run_table()
        assert end_to_end == pytest.approx(10.0)
        assert sum(layer.wall_s for layer in table) == \
            pytest.approx(end_to_end)
        assert sum(layer.share for layer in table) == pytest.approx(1.0)

    def test_layers_come_out_in_stack_order(self):
        table, _end_to_end, _dominant = self.run_table()
        assert [layer.layer for layer in table] == \
            ["bench", "server.nfsd", "kernel.bufq"]

    def test_queue_layer_is_all_queue_wait(self):
        table, _end_to_end, _dominant = self.run_table()
        bufq = next(layer for layer in table
                    if layer.layer == "kernel.bufq")
        assert bufq.queue_wait_s == pytest.approx(bufq.wall_s)
        assert bufq.service_s == pytest.approx(0.0)

    def test_pool_wait_is_refined_from_the_histogram(self):
        merged = {"histograms": {"nfs.server.nfsd_wait_s":
                                 {"count": 4, "sum": 0.5, "mean": 0.125}}}
        table, _end_to_end, _dominant = self.run_table(merged)
        nfsd = next(layer for layer in table
                    if layer.layer == "server.nfsd")
        assert nfsd.wall_s == pytest.approx(2.0)    # 6 - 4 covered
        assert nfsd.queue_wait_s == pytest.approx(0.5)
        assert nfsd.service_s == pytest.approx(1.5)

    def test_pool_wait_is_capped_at_the_layer_wall(self):
        merged = {"histograms": {"nfs.server.nfsd_wait_s":
                                 {"count": 4, "sum": 99.0, "mean": 24.75}}}
        table, _end_to_end, _dominant = self.run_table(merged)
        nfsd = next(layer for layer in table
                    if layer.layer == "server.nfsd")
        assert nfsd.queue_wait_s == pytest.approx(nfsd.wall_s)

    def test_without_metrics_pool_wait_defaults_to_service(self):
        table, _end_to_end, _dominant = self.run_table()
        nfsd = next(layer for layer in table
                    if layer.layer == "server.nfsd")
        assert nfsd.queue_wait_s == 0.0
        assert nfsd.service_s == pytest.approx(nfsd.wall_s)

    def test_empty_runs_attribute_nothing(self):
        table, end_to_end, dominant = attribute_runs([])
        assert table == [] and end_to_end == 0.0 and dominant is None


class TestDominantLayer:
    def test_driver_layer_never_wins(self):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "disk.mechanics", 4.0, 6.0, parent=1)]
        _table, _end_to_end, dominant = attribute_runs([spans])
        # bench holds 8s exclusive, but the driver cannot be dominant.
        assert dominant == "disk.mechanics"

    def test_tie_breaks_toward_the_deeper_layer(self):
        spans = [make_span(1, "bench", 0.0, 8.0),
                 make_span(2, "net.rpc", 0.0, 4.0, parent=1),
                 make_span(3, "disk.mechanics", 4.0, 8.0, parent=1)]
        table, _end_to_end, dominant = attribute_runs([spans])
        assert dominant == "disk.mechanics"
        assert dominant == dominant_layer(table)


class TestDominantByConfig:
    def runs(self):
        slow_disk = [make_span(1, "bench", 0.0, 10.0),
                     make_span(2, "disk.mechanics", 1.0, 9.0, parent=1)]
        slow_net = [make_span(1, "bench", 0.0, 10.0, run=1),
                    make_span(2, "net.rpc", 1.0, 9.0, parent=1, run=1)]
        return [slow_disk, slow_net]

    def snapshots(self):
        return [{"gauges": {}, "_context": {"series": "ide1"}},
                {"gauges": {}, "_context": {"series": "tcp"}}]

    def test_per_series_dominants(self):
        assert dominant_by_config(self.runs(), self.snapshots()) == \
            {"ide1": "disk.mechanics", "tcp": "net.rpc"}

    def test_requires_run_snapshot_alignment(self):
        assert dominant_by_config(self.runs(), self.snapshots()[:1]) == {}

    def test_requires_series_context(self):
        snapshots = [{"gauges": {}}, {"gauges": {}}]
        assert dominant_by_config(self.runs(), snapshots) == {}
