"""The trap-detector battery, on synthetic positives and negatives.

Each of the paper's traps gets a minimal fixture that *must* fire the
detector and a near-miss that must not: detectors are conservative by
design (minimum sample sizes, affected-fraction guards), so both
directions are load-bearing.  The battery also pins determinism — the
same inputs diagnose to byte-identical reports — and that every finding
carries its evidence and paper citation.
"""

import pytest

from repro.diagnose import DiagnosisInputs, diagnose, run_detectors
from repro.diagnose.detectors import default_detectors
from repro.diagnose.detectors.attrcache import AttrCacheStalenessDetector
from repro.diagnose.detectors.backlog import OpenLoopBacklogDetector
from repro.diagnose.detectors.fairness import BufqFairnessDetector
from repro.diagnose.detectors.lookupstorm import LookupStormDetector
from repro.diagnose.detectors.readdir import ReaddirChunkingDetector
from repro.diagnose.detectors.nfsheur import NfsheurThrashDetector
from repro.diagnose.detectors.tcq import TcqReorderingDetector
from repro.diagnose.detectors.warmth import CacheWarmthDetector
from repro.diagnose.detectors.zcav import ZcavDetector
from repro.obs.span import Span

MB = 1024.0 * 1024.0


def snap(gauges=None, histograms=None, context=None):
    snapshot = {"counters": {}, "gauges": gauges or {},
                "histograms": histograms or {}}
    if context is not None:
        snapshot["_context"] = context
    return snapshot


def zone_snap(zone, mb_s, nbytes=8 * MB, readers=1, series="a"):
    """A run that read ``nbytes`` entirely inside one of two zones."""
    gauges = {"disk.zone0.bytes_read": 0.0, "disk.zone1.bytes_read": 0.0,
              "disk.zone0.mb_s": 0.0, "disk.zone1.mb_s": 0.0}
    gauges[f"disk.zone{zone}.bytes_read"] = nbytes
    gauges[f"disk.zone{zone}.mb_s"] = mb_s
    return snap(gauges, context={"series": series, "readers": readers})


def make_span(span_id, cat, start, end, parent=None, run=0):
    span = Span(None, span_id, cat, cat, parent, start, False,
                {"run": run})
    span.end = end
    return span


def detect(detector, **inputs_kwargs):
    return detector.detect(DiagnosisInputs(**inputs_kwargs))


class TestZcav:
    def test_outer_faster_than_inner_fires(self):
        findings = detect(ZcavDetector(), snapshots=[
            zone_snap(0, 50.0, series="outer"),
            zone_snap(1, 30.0, series="inner")])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "critical"
        assert finding.paper_section == "§5.1"
        assert finding.evidence["rate_ratio"] == pytest.approx(50 / 30)

    def test_flat_zones_stay_silent(self):
        assert detect(ZcavDetector(), snapshots=[
            zone_snap(0, 50.0, series="outer"),
            zone_snap(1, 48.0, series="inner")]) == []

    def test_too_few_bytes_stay_silent(self):
        assert detect(ZcavDetector(), snapshots=[
            zone_snap(0, 50.0, nbytes=1 * MB, series="outer"),
            zone_snap(1, 30.0, nbytes=1 * MB, series="inner")]) == []

    def test_ungrouped_runs_need_a_larger_ratio(self):
        def bare(zone, mb_s):
            snapshot = zone_snap(zone, mb_s)
            del snapshot["_context"]
            return snapshot
        # 1.25x clears the grouped threshold but not the uncontrolled
        # fallback; 1.5x clears both.
        assert detect(ZcavDetector(),
                      snapshots=[bare(0, 37.5), bare(1, 30.0)]) == []
        assert len(detect(ZcavDetector(),
                          snapshots=[bare(0, 45.0), bare(1, 30.0)])) == 1

    def test_comparison_stays_within_sweep_groups(self):
        # Outer zone at 1 reader vs inner zone at 32 readers: different
        # x-positions, so no group holds both points — silence, even
        # though the raw ratio is huge.
        assert detect(ZcavDetector(), snapshots=[
            zone_snap(0, 50.0, readers=1),
            zone_snap(1, 10.0, readers=32)]) == []


class TestTcq:
    def tcq_snap(self, enabled=1.0, reorder=0.3, commands=200):
        return snap(
            {"disk.tcq_enabled": enabled, "disk.tcq_depth": 64.0,
             "disk.reorder_fraction": reorder},
            {"disk.tcq_wait_s": {"count": commands, "sum": commands * 0.01,
                                 "mean": 0.01, "min": 0.0, "max": 0.1}})

    def test_enabled_and_reordering_fires(self):
        findings = detect(TcqReorderingDetector(),
                          snapshots=[self.tcq_snap()])
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].paper_section == "§5.2"
        assert findings[0].evidence["reorder_fraction"] == 0.3

    def test_tags_disabled_stays_silent(self):
        assert detect(TcqReorderingDetector(),
                      snapshots=[self.tcq_snap(enabled=0.0)]) == []

    def test_in_order_service_stays_silent(self):
        assert detect(TcqReorderingDetector(),
                      snapshots=[self.tcq_snap(reorder=0.01)]) == []

    def test_too_few_commands_stay_silent(self):
        assert detect(TcqReorderingDetector(),
                      snapshots=[self.tcq_snap(commands=10)]) == []


class TestFairness:
    def staircase_run(self, starved_bufq=6.0):
        """Four readers: three finish at 4s, one starves until 10s."""
        spans = [make_span(1, "bench", 0.0, 10.0)]
        if starved_bufq > 0:
            spans.append(make_span(2, "kernel.bufq", 0.0, starved_bufq,
                                   parent=1))
        for reader in range(3):
            spans.append(make_span(10 + reader, "bench", 0.0, 4.0))
        return spans

    def test_staircase_explained_by_bufq_fires(self):
        findings = detect(BufqFairnessDetector(),
                          runs=[self.staircase_run()])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "critical"
        assert finding.paper_section == "§5.3"
        assert finding.evidence["completion_spread"] == pytest.approx(0.6)
        assert finding.evidence["starved_bufq_share"] == pytest.approx(0.6)

    def test_staircase_without_bufq_time_stays_silent(self):
        # Same spread, but the slow reader was not parked in the queue:
        # the spread is work, not starvation.
        assert detect(BufqFairnessDetector(),
                      runs=[self.staircase_run(starved_bufq=0.0)]) == []

    def test_even_completions_stay_silent(self):
        spans = [make_span(index, "bench", 0.0, 4.0)
                 for index in range(1, 5)]
        assert detect(BufqFairnessDetector(), runs=[spans]) == []

    def test_too_few_readers_are_ineligible(self):
        spans = [make_span(1, "bench", 0.0, 10.0),
                 make_span(2, "kernel.bufq", 0.0, 6.0, parent=1),
                 make_span(3, "bench", 0.0, 4.0)]
        assert detect(BufqFairnessDetector(), runs=[spans]) == []

    def test_minority_of_runs_does_not_convict(self):
        fair = [make_span(index, "bench", 0.0, 4.0)
                for index in range(1, 5)]
        assert detect(BufqFairnessDetector(),
                      runs=[self.staircase_run(), fair, fair]) == []


class TestNfsheur:
    def heur_snap(self, hit_rate, ejections, lookups=1000.0):
        return snap({"nfs.server.nfsheur_lookups": lookups,
                     "nfs.server.nfsheur_hit_rate": hit_rate,
                     "nfs.server.nfsheur_ejections": ejections,
                     "nfs.server.nfsheur_table_size": 16.0,
                     "nfs.server.nfsheur_occupancy": 16.0})

    def test_collapsed_hit_rate_with_ejections_fires(self):
        findings = detect(NfsheurThrashDetector(),
                          snapshots=[self.heur_snap(0.3, 700.0)])
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].paper_section == "§6.3"
        assert findings[0].evidence["table_size"] == 16.0

    def test_healthy_table_stays_silent(self):
        assert detect(NfsheurThrashDetector(),
                      snapshots=[self.heur_snap(0.98, 0.0)]) == []

    def test_cold_start_misses_are_not_thrash(self):
        # Sub-unity hit rate but no ejections: a cold table filling up.
        assert detect(NfsheurThrashDetector(),
                      snapshots=[self.heur_snap(0.5, 10.0)]) == []

    def test_too_few_lookups_are_ineligible(self):
        assert detect(NfsheurThrashDetector(),
                      snapshots=[self.heur_snap(0.3, 70.0,
                                                lookups=100.0)]) == []

    def test_sweep_tail_alone_does_not_convict(self):
        """One thrashing point at the extreme of an otherwise-healthy
        sweep (fig6's 32-reader tail) is the boundary being measured,
        not a pervasive trap."""
        snapshots = [self.heur_snap(0.99, 0.0) for _ in range(3)]
        snapshots.append(self.heur_snap(0.3, 700.0))
        assert detect(NfsheurThrashDetector(), snapshots=snapshots) == []


class TestWarmth:
    def repeats(self, rates, gauge="kernel.cache.hit_rate"):
        return [snap({gauge: rate}, context={"series": "x", "readers": 2})
                for rate in rates]

    def test_first_repeat_cold_rest_warm_fires(self):
        findings = detect(CacheWarmthDetector(),
                          snapshots=self.repeats([0.1, 0.6, 0.65]))
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].paper_section == "§4.3.1"
        assert findings[0].evidence["first_repeat_hit_rate"] == 0.1

    def test_steady_hit_rate_stays_silent(self):
        assert detect(CacheWarmthDetector(),
                      snapshots=self.repeats([0.5, 0.55, 0.5])) == []

    def test_two_repeats_are_ineligible(self):
        assert detect(CacheWarmthDetector(),
                      snapshots=self.repeats([0.1, 0.6])) == []

    def test_drive_cache_gauge_also_counts(self):
        findings = detect(
            CacheWarmthDetector(),
            snapshots=self.repeats([0.0, 0.4, 0.5],
                                   gauge="disk.cache.hit_rate"))
        assert len(findings) == 1
        assert findings[0].evidence["metric"] == "disk.cache.hit_rate"


class TestBacklog:
    def replay_snap(self, offered=1000.0, completed=1000.0,
                    lateness=0.0, rate=100.0):
        return snap({"replay.offered_ops": offered,
                     "replay.completed_ops": completed,
                     "replay.lateness_s": lateness,
                     "replay.offered_ops_s": rate})

    def test_completion_shortfall_fires(self):
        findings = detect(OpenLoopBacklogDetector(),
                          snapshots=[self.replay_snap(completed=600.0)])
        assert len(findings) == 1
        assert findings[0].paper_section == "§4.2"
        assert findings[0].evidence["completed_ops"] == 600.0

    def test_compounding_lateness_fires_critically(self):
        # 0.2s late per op against a 0.01s inter-arrival gap: the
        # backlog, not the server, is being measured.
        findings = detect(OpenLoopBacklogDetector(),
                          snapshots=[self.replay_snap(lateness=120.0)])
        assert len(findings) == 1
        assert findings[0].severity == "critical"

    def test_keeping_up_stays_silent(self):
        assert detect(OpenLoopBacklogDetector(),
                      snapshots=[self.replay_snap(lateness=5.0)]) == []

    def test_short_replays_are_ineligible(self):
        assert detect(OpenLoopBacklogDetector(),
                      snapshots=[self.replay_snap(offered=10.0,
                                                  completed=6.0)]) == []


class TestBattery:
    def mixed_inputs(self):
        return DiagnosisInputs(
            runs=[TestFairness().staircase_run()],
            snapshots=[zone_snap(0, 50.0, series="outer"),
                       zone_snap(1, 30.0, series="inner"),
                       TestTcq().tcq_snap()])

    def test_default_battery_covers_all_nine_traps(self):
        assert [type(detector) for detector in default_detectors()] == [
            ZcavDetector, TcqReorderingDetector, BufqFairnessDetector,
            NfsheurThrashDetector, CacheWarmthDetector,
            OpenLoopBacklogDetector, AttrCacheStalenessDetector,
            LookupStormDetector, ReaddirChunkingDetector]

    def test_findings_come_out_in_battery_order(self):
        findings = run_detectors(self.mixed_inputs())
        assert [finding.detector for finding in findings] == \
            ["zcav", "tcq", "fairness"]

    def test_every_finding_carries_evidence_and_citation(self):
        for finding in run_detectors(self.mixed_inputs()):
            assert finding.evidence
            assert finding.paper_section.startswith("§")
            assert 0.0 < finding.magnitude
            assert finding.severity in ("info", "warning", "critical")

    def test_diagnosis_is_deterministic(self):
        first = diagnose(self.mixed_inputs()).to_json()
        second = diagnose(self.mixed_inputs()).to_json()
        assert first == second
        assert "zcav" in first

    def test_clean_inputs_produce_no_findings(self):
        report = diagnose(DiagnosisInputs(
            snapshots=[snap({"kernel.cache.hit_rate": 0.5})]))
        assert report.findings == []
        assert "traps detected: none" in report.render()
