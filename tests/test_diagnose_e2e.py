"""End-to-end acceptance for ``repro diagnose``.

The issue's criterion, verbatim: diagnose on a fig1 (ZCAV) and fig2
(TCQ) experiment trace flags the corresponding trap with cited
evidence, and flags *nothing* on a trap-free fig6 run.  These tests
run the real experiments through the real CLI — ``--trace`` plus
``--metrics-out`` artifacts on disk, then the ``diagnose`` verb over
those files — at reduced scale, and also pin that the verb's JSON
output is byte-identical across invocations.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main

#: (experiment, scale): small enough to keep the suite fast, large
#: enough that every detector's minimum-evidence guard is satisfied.
RUNS = [("fig1", "0.03125"), ("fig2", "0.03125"), ("fig6", "0.015625")]


def run_cli(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Trace + metrics files for each experiment, via the CLI flags."""
    root = tmp_path_factory.mktemp("diagnose_e2e")
    paths = {}
    for experiment, scale in RUNS:
        trace = root / f"{experiment}.trace.json"
        metrics = root / f"{experiment}.metrics.json"
        code, out = run_cli([experiment, "--runs", "1", "--scale",
                             scale, "--trace", str(trace),
                             "--metrics-out", str(metrics)])
        assert code == 0
        assert "snapshots ->" in out and "spans ->" in out
        paths[experiment] = (str(trace), str(metrics))
    return paths


@pytest.fixture(scope="module")
def reports(artifacts):
    """Parsed ``diagnose --json`` report per experiment."""
    reports = {}
    for experiment, (trace, metrics) in artifacts.items():
        code, out = run_cli(["diagnose", "--trace", trace,
                             "--metrics", metrics, "--json"])
        assert code == 0
        reports[experiment] = json.loads(out)
    return reports


def findings_by_detector(report):
    return {finding["detector"]: finding
            for finding in report["findings"]}


class TestTrapVerdicts:
    def test_fig1_flags_zcav_with_cited_evidence(self, reports):
        zcav = findings_by_detector(reports["fig1"])["zcav"]
        assert zcav["paper_section"] == "§5.1"
        assert zcav["evidence"]["rate_ratio"] > 1.15
        assert zcav["evidence"]["outer_band_mb_s"] > \
            zcav["evidence"]["inner_band_mb_s"]

    def test_fig2_flags_tcq_with_cited_evidence(self, reports):
        tcq = findings_by_detector(reports["fig2"])["tcq"]
        assert tcq["severity"] == "critical"
        assert tcq["paper_section"] == "§5.2"
        assert tcq["evidence"]["reorder_fraction"] >= 0.05
        assert tcq["evidence"]["tcq_commands"] >= 50

    def test_fig6_flags_nothing(self, reports):
        assert reports["fig6"]["findings"] == []

    def test_no_spurious_detectors_fire(self, reports):
        # fig1/fig2 sweep both partitions of a TCQ-capable drive, so
        # zcav and tcq are *both* genuine there — but nothing else is.
        for experiment in ("fig1", "fig2"):
            assert set(findings_by_detector(reports[experiment])) <= \
                {"zcav", "tcq"}


class TestAttribution:
    def test_table_covers_the_request_path(self, reports):
        report = reports["fig6"]
        layers = {row["layer"] for row in report["attribution"]}
        assert {"bench", "kernel.bufq", "disk.mechanics"} <= layers
        assert report["runs"] == 24
        assert report["end_to_end_s"] > 0

    def test_shares_partition_the_wall_time(self, reports):
        for report in reports.values():
            shares = [row["share"] for row in report["attribution"]]
            assert sum(shares) == pytest.approx(1.0)
            assert all(share >= 0 for share in shares)

    def test_fig6_bottleneck_is_the_disk_queue(self, reports):
        assert reports["fig6"]["dominant"] == "kernel.bufq"

    def test_fig1_bottleneck_splits_by_drive(self, reports):
        by_config = reports["fig1"]["dominant_by_config"]
        assert set(by_config) == {"ide1", "ide4", "scsi1", "scsi4"}
        assert by_config["scsi1"] == "disk.tcq"
        assert by_config["ide1"] == "kernel.bufq"


class TestCliContract:
    def test_json_report_is_byte_identical_across_invocations(
            self, artifacts):
        trace, metrics = artifacts["fig2"]
        argv = ["diagnose", "--trace", trace, "--metrics", metrics,
                "--json"]
        first = run_cli(argv)
        second = run_cli(argv)
        assert first == second

    def test_human_rendering_has_the_attribution_table(self, artifacts):
        trace, metrics = artifacts["fig6"]
        code, out = run_cli(["diagnose", "--trace", trace,
                             "--metrics", metrics])
        assert code == 0
        assert "critical path" in out
        assert "dominant bottleneck: kernel.bufq" in out
        assert "traps detected: none" in out

    def test_metrics_only_diagnosis_works(self, artifacts):
        _trace, metrics = artifacts["fig2"]
        code, out = run_cli(["diagnose", "--metrics", metrics,
                             "--json"])
        assert code == 0
        report = json.loads(out)
        assert report["runs"] == 0
        assert "tcq" in findings_by_detector(report)
