"""The bench-history store and the noise-aware regression gate.

The acceptance pair from the issue: a synthetic 20 % throughput drop
must fail the comparator (and the CLI must exit non-zero), while
jitter within the repeats' own spread must pass.  Around that, the
store's mechanics: append/load round-trip, configuration keying, and
the spread arithmetic the threshold is built from.
"""

import json

import pytest

from repro.cli import main
from repro.diagnose import (append_history, bench_key,
                            compare_against_history, gate_latest,
                            load_history, relative_spread)


def record(mean, throughputs=None, readers=4, transport="udp"):
    return {"verb": "bench", "drive": "ide", "partition": 1,
            "transport": transport, "heuristic": "default",
            "nfsheur": "default", "readers": readers, "scale": 0.125,
            "seed": 0, "runs": len(throughputs or ()) or 1,
            "jobs": 1, "throughputs_mb_s": throughputs or [mean],
            "mean_mb_s": mean, "std_mb_s": 0.0}


class TestStore:
    def test_append_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        first, second = record(10.0), record(9.8)
        append_history(path, first)
        append_history(path, second)
        assert load_history(path) == [first, second]

    def test_append_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "benchmarks" / "results" / "h.jsonl")
        append_history(path, record(10.0))
        assert load_history(path) == [record(10.0)]

    def test_blank_lines_tolerated_bad_lines_rejected(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps(record(10.0)) + "\n\n")
        assert len(load_history(str(path))) == 1
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_history(str(path))

    def test_key_separates_configurations(self):
        assert bench_key(record(10.0)) == bench_key(record(8.0))
        assert bench_key(record(10.0)) != \
            bench_key(record(10.0, readers=8))
        assert bench_key(record(10.0)) != \
            bench_key(record(10.0, transport="tcp"))

    def test_relative_spread(self):
        assert relative_spread(record(10.0, [9.0, 10.0, 11.0])) == \
            pytest.approx(0.2)
        assert relative_spread(record(10.0, [10.0])) == 0.0
        assert relative_spread({}) == 0.0


class TestComparator:
    def test_twenty_percent_drop_fails(self):
        gate = compare_against_history(record(8.0), [record(10.0)])
        assert not gate.ok
        assert gate.rel_delta == pytest.approx(0.2)
        assert "regressed" in gate.reason

    def test_jitter_within_floor_passes(self):
        gate = compare_against_history(record(9.7), [record(10.0)])
        assert gate.ok
        assert "within noise" in gate.reason

    def test_noisy_repeats_widen_the_threshold(self):
        # The baseline's own repeats scatter 15%: an 8% drop is not a
        # verdict this data can support.
        noisy = record(10.0, [9.25, 10.0, 10.75])
        gate = compare_against_history(record(9.2), [noisy])
        assert gate.ok
        assert gate.threshold == pytest.approx(0.15)
        # The same drop against tight repeats fails.
        tight = record(10.0, [9.99, 10.0, 10.01])
        assert not compare_against_history(record(9.2), [tight]).ok

    def test_gates_against_the_latest_matching_record(self):
        history = [record(20.0), record(10.0, readers=8), record(10.0)]
        gate = compare_against_history(record(9.9), history)
        assert gate.ok and gate.baseline_mean == 10.0

    def test_no_baseline_passes(self):
        gate = compare_against_history(record(10.0, readers=16),
                                       [record(10.0)])
        assert gate.ok and "nothing to gate" in gate.reason

    def test_improvement_passes_and_says_so(self):
        gate = compare_against_history(record(13.0), [record(10.0)])
        assert gate.ok and "improved" in gate.reason

    def test_gate_latest_uses_newest_record(self):
        assert not gate_latest([record(10.0), record(8.0)]).ok
        assert gate_latest([record(10.0), record(9.9)]).ok
        assert gate_latest([]).ok


class TestCliGate:
    def write_history(self, tmp_path, *records):
        path = str(tmp_path / "history.jsonl")
        for entry in records:
            append_history(path, entry)
        return path

    def test_regression_in_history_exits_nonzero(self, tmp_path, capsys):
        path = self.write_history(tmp_path, record(10.0), record(8.0))
        assert main(["diagnose", "--against", path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_within_noise_history_exits_zero(self, tmp_path, capsys):
        path = self.write_history(tmp_path, record(10.0), record(9.9))
        assert main(["diagnose", "--against", path]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_record_gated_against_history(self, tmp_path, capsys):
        path = self.write_history(tmp_path, record(10.0))
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(record(8.0)))
        code = main(["diagnose", "--bench", str(bench),
                     "--against", path, "--json"])
        assert code == 1
        gate = json.loads(capsys.readouterr().out)["gate"]
        assert gate["ok"] is False
        assert gate["rel_delta"] == pytest.approx(0.2)

    def test_floor_flag_loosens_the_gate(self, tmp_path, capsys):
        path = self.write_history(tmp_path, record(10.0), record(8.0))
        assert main(["diagnose", "--against", path,
                     "--floor", "0.25"]) == 0
        capsys.readouterr()

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert main(["diagnose"]) == 2
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(record(8.0)))
        assert main(["diagnose", "--bench", str(bench)]) == 2
        assert main(["diagnose", "--against",
                     str(tmp_path / "absent.jsonl")]) == 2
        capsys.readouterr()


class TestBenchHistoryFlags:
    def test_out_writes_the_printed_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        code = main(["bench", "--readers", "1", "--runs", "1",
                     "--scale", "0.02", "--out", str(out)])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == printed
        assert printed["mean_mb_s"] > 0

    def test_history_flag_appends_records(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        args = ["bench", "--readers", "1", "--runs", "1",
                "--scale", "0.02", "--json", "--history", path]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        history = load_history(path)
        assert len(history) == 2
        assert bench_key(history[0]) == bench_key(history[1])
        # Identical seeds reproduce identical throughput: the gate on
        # this store passes.
        assert gate_latest(history).ok

    def test_default_history_path_is_under_benchmarks(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--readers", "1", "--runs", "1",
                     "--scale", "0.02", "--json", "--history"]) == 0
        capsys.readouterr()
        assert (tmp_path / "benchmarks" / "results" /
                "history.jsonl").exists()
