"""Unit tests for the firmware segmented prefetch cache."""

import random

import pytest

from repro.disk import SegmentedCache


def cache(segments=4, sectors=512, replacement="lru"):
    return SegmentedCache(segments, sectors, replacement=replacement,
                          rng=random.Random(1))


class TestLookup:
    def test_empty_cache_misses(self):
        lookup = cache().lookup(100, 16, now=0.0)
        assert not lookup.hit
        assert lookup.covered_sectors == 0

    def test_requested_sectors_hit_after_fill(self):
        c = cache()
        c.begin_fill(100, 16, fill_rate=1000.0, now=0.0)
        lookup = c.lookup(100, 16, now=0.0)
        assert lookup.hit
        assert lookup.covered_sectors == 16

    def test_prefetch_grows_with_time(self):
        c = cache()
        c.begin_fill(0, 16, fill_rate=1000.0, now=0.0)
        # After 0.1s the fill has captured 100 more sectors.
        assert c.lookup(16, 100, now=0.1).covered_sectors == 100
        assert not c.lookup(16, 101, now=0.1).continuation is None

    def test_partial_hit_with_active_fill_is_continuation(self):
        c = cache()
        c.begin_fill(0, 16, fill_rate=1000.0, now=0.0)
        lookup = c.lookup(16, 50, now=0.01)  # 10 sectors captured
        assert lookup.hit
        assert lookup.covered_sectors == 10
        assert lookup.continuation

    def test_partial_hit_after_freeze_is_not_continuation(self):
        c = cache()
        c.begin_fill(0, 16, fill_rate=1000.0, now=0.0)
        c.freeze_fills(0.01)
        lookup = c.lookup(16, 50, now=0.02)
        assert lookup.hit
        assert lookup.covered_sectors == 10
        assert not lookup.continuation

    def test_fill_capped_at_segment_limit(self):
        c = cache(sectors=100)
        c.begin_fill(0, 16, fill_rate=1e9, now=0.0)
        lookup = c.lookup(16, 200, now=10.0)
        assert lookup.covered_sectors == 100  # limit = 16 + 100 - 16

    def test_miss_before_segment_start(self):
        c = cache()
        c.begin_fill(100, 16, fill_rate=1000.0, now=0.0)
        assert not c.lookup(50, 10, now=1.0).hit


class TestFillManagement:
    def test_sequential_fill_extends_segment(self):
        c = cache(segments=2)
        first = c.begin_fill(0, 16, fill_rate=1000.0, now=0.0)
        second = c.begin_fill(16, 16, fill_rate=1000.0, now=0.001)
        assert first is second
        assert len(c.segments) == 1

    def test_distinct_streams_get_distinct_segments(self):
        c = cache(segments=4)
        c.begin_fill(0, 16, 1000.0, now=0.0)
        c.begin_fill(100_000, 16, 1000.0, now=0.001)
        assert len(c.segments) == 2

    def test_lru_eviction(self):
        c = cache(segments=2, replacement="lru")
        c.begin_fill(0, 16, 1000.0, now=0.0)
        c.begin_fill(100_000, 16, 1000.0, now=1.0)
        c.lookup(0, 4, now=2.0)               # touch stream 0
        c.begin_fill(200_000, 16, 1000.0, now=3.0)
        assert c.lookup(0, 4, now=3.0).hit         # survived
        assert not c.lookup(100_000, 4, now=3.0).hit  # evicted

    def test_mru_eviction(self):
        c = cache(segments=2, replacement="mru")
        c.begin_fill(0, 16, 1000.0, now=0.0)
        c.begin_fill(100_000, 16, 1000.0, now=1.0)
        c.freeze_fills(1.5)
        c.begin_fill(200_000, 16, 1000.0, now=2.0)
        assert c.lookup(0, 4, now=3.0).hit            # oldest survived
        assert not c.lookup(100_000, 4, now=3.0).hit  # MRU evicted

    def test_invalidate_clears_everything(self):
        c = cache()
        c.begin_fill(0, 16, 1000.0, now=0.0)
        c.invalidate()
        assert not c.lookup(0, 4, now=1.0).hit
        assert c.segments == []

    def test_freeze_caps_coverage_permanently(self):
        c = cache()
        c.begin_fill(0, 16, fill_rate=1000.0, now=0.0)
        c.freeze_fills(0.01)  # 10 extra sectors captured
        assert c.lookup(16, 10, now=5.0).covered_sectors == 10
        assert c.lookup(16, 11, now=5.0).covered_sectors == 10


class TestValidation:
    def test_bad_segment_count(self):
        with pytest.raises(ValueError):
            SegmentedCache(0, 100)

    def test_bad_segment_size(self):
        with pytest.raises(ValueError):
            SegmentedCache(4, 0)

    def test_bad_replacement(self):
        with pytest.raises(ValueError):
            SegmentedCache(4, 100, replacement="fifo")
