"""Unit tests for the disk drive: service times, TCQ, instrumentation."""

import pytest

from repro.disk import (AgedSptfFirmware, DiskRequest, FifoFirmware,
                        IBM_DDYS_T36950N, WDC_WD200BB)
from repro.sim import Simulator


def build_ide(sim):
    return WDC_WD200BB.build(sim)


def build_scsi(sim, tags=True):
    return IBM_DDYS_T36950N.build(sim, tagged_queueing=tags)


def submit_and_run(sim, drive, requests):
    events = [drive.submit(request) for request in requests]
    sim.run()
    return events


class TestServiceBasics:
    def test_single_read_takes_positioning_plus_transfer(self):
        sim = Simulator()
        drive = build_ide(sim)
        request = DiskRequest(lba=1_000_000, nsectors=128)
        submit_and_run(sim, drive, [request])
        assert request.completion > 0
        media = drive.geometry.media_rate(1_000_000)
        transfer = 128 * 512 / media
        # Positioning cannot exceed full seek + one revolution.
        ceiling = (drive.seek_model.seek_time(drive.geometry.cylinders - 1)
                   + drive.rotation.revolution_time + transfer + 0.001)
        assert transfer < request.completion <= ceiling

    def test_sequential_requests_avoid_rotation(self):
        """Back-to-back sequential reads must run near media rate —
        the firmware prefetch catches sectors during host gaps."""
        sim = Simulator()
        drive = build_ide(sim)
        nbytes = 64 * 1024
        nsectors = nbytes // 512
        total = 8 * 1024 * 1024

        def reader(sim):
            lba = 0
            while lba * 512 < total:
                yield drive.submit(DiskRequest(lba=lba, nsectors=nsectors))
                yield sim.timeout(0.0002)
                lba += nsectors

        process = sim.spawn(reader(sim))
        sim.run_until_complete(process)
        achieved = total / sim.now
        media = drive.geometry.media_rate(0)
        assert achieved > 0.6 * media

    def test_cache_hit_served_at_interface_rate(self):
        sim = Simulator()
        drive = build_ide(sim)
        first = DiskRequest(lba=0, nsectors=16)
        submit_and_run(sim, drive, [first])
        start = sim.now
        # Wait for prefetch to cover the next blocks, then re-request.
        second = DiskRequest(lba=0, nsectors=16)

        def reread(sim):
            yield sim.timeout(0.05)
            began = sim.now
            yield drive.submit(second)
            return sim.now - began

        process = sim.spawn(reread(sim))
        elapsed = sim.run_until_complete(process)
        interface_time = 16 * 512 / drive.interface_rate
        assert elapsed == pytest.approx(
            interface_time + drive.command_overhead, rel=0.01)
        assert second.serviced_from_cache

    def test_flush_cache_forces_media_read(self):
        sim = Simulator()
        drive = build_ide(sim)
        submit_and_run(sim, drive, [DiskRequest(lba=0, nsectors=16)])
        drive.flush_cache()
        second = DiskRequest(lba=0, nsectors=16)

        def reread(sim):
            yield drive.submit(second)

        sim.run_until_complete(sim.spawn(reread(sim)))
        assert not second.serviced_from_cache


class TestTaggedQueueing:
    def test_queue_limit_reflects_mode(self):
        sim = Simulator()
        assert build_scsi(sim, tags=True).queue_limit == 64
        assert build_scsi(sim, tags=False).queue_limit == 1

    def test_ide_has_no_tagged_queueing(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WDC_WD200BB.build(sim, tagged_queueing=True)

    def test_tags_reorder_requests(self):
        """§5.2's instrumentation: with tags on, service order differs
        from arrival order; with tags off they match."""
        def run(tags):
            sim = Simulator()
            drive = build_scsi(sim, tags=tags)
            geometry = drive.geometry
            spread = geometry.total_sectors // 8
            requests = [DiskRequest(lba=(7 - i) * spread, nsectors=16)
                        for i in range(8)]
            submit_and_run(sim, drive, requests)
            return drive.stats

        assert run(tags=False).record_orders_match()
        assert not run(tags=True).record_orders_match()
        assert run(tags=True).reorder_fraction > 0


class TestFirmwareSchedulers:
    def test_fifo_pops_in_order(self):
        queue = [DiskRequest(lba=10, nsectors=1),
                 DiskRequest(lba=5, nsectors=1)]
        first = FifoFirmware().select(queue, 0.0, lambda r: 0.0)
        assert first.lba == 10

    def test_sptf_picks_cheapest(self):
        near = DiskRequest(lba=1, nsectors=1)
        far = DiskRequest(lba=2, nsectors=1)
        near.arrival = far.arrival = 0.0
        queue = [far, near]
        chosen = AgedSptfFirmware(aging_weight=0.0).select(
            queue, 0.0, lambda r: 0.001 if r is near else 0.02)
        assert chosen is near

    def test_aging_overrides_position(self):
        stale = DiskRequest(lba=1, nsectors=1)
        fresh = DiskRequest(lba=2, nsectors=1)
        stale.arrival = 0.0
        fresh.arrival = 0.099
        queue = [stale, fresh]
        chosen = AgedSptfFirmware(aging_weight=1.0).select(
            queue, 0.1, lambda r: 0.02 if r is stale else 0.001)
        assert chosen is stale

    def test_negative_aging_rejected(self):
        with pytest.raises(ValueError):
            AgedSptfFirmware(aging_weight=-1)


class TestStats:
    def test_bytes_and_counts(self):
        sim = Simulator()
        drive = build_ide(sim)
        submit_and_run(sim, drive, [DiskRequest(lba=0, nsectors=16),
                                    DiskRequest(lba=16, nsectors=16)])
        assert drive.stats.requests == 2
        assert drive.stats.bytes_read == 32 * 512
        assert drive.stats.busy_time > 0

    def test_seek_counted_for_distant_requests(self):
        sim = Simulator()
        drive = build_ide(sim)
        far = drive.geometry.total_sectors // 2
        submit_and_run(sim, drive, [DiskRequest(lba=0, nsectors=16),
                                    DiskRequest(lba=far, nsectors=16)])
        assert drive.stats.seeks >= 1
        assert drive.stats.total_seek_cylinders > 0
