"""Property-based tests for the disk drive (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskRequest, IBM_DDYS_T36950N, WDC_WD200BB
from repro.sim import Simulator

request_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000_000),
              st.integers(min_value=1, max_value=256),
              st.booleans()),
    min_size=1, max_size=40)


def run_batch(spec, tuples, tags=None):
    sim = Simulator()
    drive = spec.build(sim, tagged_queueing=tags)
    requests = [DiskRequest(lba=lba, nsectors=n, is_write=w)
                for lba, n, w in tuples]
    for request in requests:
        drive.submit(request)
    sim.run()
    return sim, drive, requests


@given(request_lists)
@settings(max_examples=40, deadline=None)
def test_every_request_completes_exactly_once_ide(tuples):
    sim, drive, requests = run_batch(WDC_WD200BB, tuples)
    assert all(r.done.processed for r in requests)
    assert drive.stats.requests == len(requests)
    assert sorted(drive.stats.service_order) == \
        sorted(r.id for r in requests)


@given(request_lists)
@settings(max_examples=40, deadline=None)
def test_every_request_completes_under_tcq(tuples):
    """The firmware scheduler (aged SPTF) must not starve anything."""
    sim, drive, requests = run_batch(IBM_DDYS_T36950N, tuples, tags=True)
    assert all(r.done.processed for r in requests)
    assert all(r.completion >= r.arrival for r in requests)


@given(request_lists)
@settings(max_examples=40, deadline=None)
def test_service_time_bounds(tuples):
    """Each command takes at least its media/interface transfer time
    and at most full-stroke + a revolution + transfer (+ overheads)."""
    sim, drive, requests = run_batch(WDC_WD200BB, tuples)
    geometry = drive.geometry
    worst_positioning = (
        drive.seek_model.seek_time(geometry.cylinders - 1)
        + drive.rotation.revolution_time)
    for request in requests:
        elapsed = request.completion - request.service_start
        nbytes = request.nsectors * geometry.sector_size
        fastest = nbytes / drive.interface_rate
        slowest = (worst_positioning + drive.command_overhead
                   + nbytes / geometry.media_rate(
                       min(request.lba, geometry.total_sectors - 1))
                   + 1e-6)
        assert fastest - 1e-12 <= elapsed <= slowest


@given(request_lists)
@settings(max_examples=30, deadline=None)
def test_busy_time_additive(tuples):
    sim, drive, requests = run_batch(WDC_WD200BB, tuples)
    per_request = sum(r.completion - r.service_start for r in requests)
    assert drive.stats.busy_time <= per_request + 1e-9
    assert drive.stats.busy_time <= sim.now + 1e-9


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=20, deadline=None)
def test_sequential_stream_monotone_completions(nrequests):
    """Back-to-back sequential commands complete in submission order
    with strictly increasing completion times (FIFO, no tags)."""
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    requests = [DiskRequest(lba=index * 128, nsectors=128)
                for index in range(nrequests)]
    for request in requests:
        drive.submit(request)
    sim.run()
    completions = [r.completion for r in requests]
    assert completions == sorted(completions)
    assert drive.stats.record_orders_match()
