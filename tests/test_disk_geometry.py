"""Unit and property tests for ZCAV geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import (DiskGeometry, IBM_DDYS_T36950N, WDC_WD200BB, Zone,
                        make_linear_zcav_zones)


def small_geometry():
    return DiskGeometry("toy", rpm=6000, heads=2,
                        zones=[Zone(cylinders=10, sectors_per_track=30),
                               Zone(cylinders=10, sectors_per_track=20)])


class TestZone:
    def test_validation(self):
        with pytest.raises(ValueError):
            Zone(cylinders=0, sectors_per_track=10)
        with pytest.raises(ValueError):
            Zone(cylinders=5, sectors_per_track=0)


class TestGeometryBasics:
    def test_totals(self):
        geometry = small_geometry()
        assert geometry.cylinders == 20
        assert geometry.total_sectors == 10 * 2 * 30 + 10 * 2 * 20
        assert geometry.capacity_bytes == geometry.total_sectors * 512

    def test_zone_lookup_by_lba(self):
        geometry = small_geometry()
        assert geometry.zone_index_of_lba(0) == 0
        first_inner = 10 * 2 * 30
        assert geometry.zone_index_of_lba(first_inner - 1) == 0
        assert geometry.zone_index_of_lba(first_inner) == 1

    def test_lba_out_of_range_rejected(self):
        geometry = small_geometry()
        with pytest.raises(ValueError):
            geometry.zone_of_lba(-1)
        with pytest.raises(ValueError):
            geometry.cylinder_of_lba(geometry.total_sectors)

    def test_chs_of_first_and_last(self):
        geometry = small_geometry()
        assert geometry.lba_to_chs(0) == (0, 0, 0)
        cyl, head, sector = geometry.lba_to_chs(
            geometry.total_sectors - 1)
        assert cyl == 19 and head == 1 and sector == 19

    def test_chs_validation(self):
        geometry = small_geometry()
        with pytest.raises(ValueError):
            geometry.chs_to_lba(99, 0, 0)
        with pytest.raises(ValueError):
            geometry.chs_to_lba(0, 5, 0)
        with pytest.raises(ValueError):
            geometry.chs_to_lba(0, 0, 30)  # sector 30 of a 30-spt track

    def test_media_rate_outer_faster_than_inner(self):
        geometry = small_geometry()
        outer = geometry.media_rate(0)
        inner = geometry.media_rate(geometry.total_sectors - 1)
        assert outer / inner == pytest.approx(30 / 20)

    def test_media_rate_formula(self):
        geometry = small_geometry()
        # 30 sectors * 512 bytes per revolution at 100 rev/s.
        assert geometry.media_rate(0) == pytest.approx(30 * 512 * 100)

    def test_angle_of_lba_cycles_within_track(self):
        geometry = small_geometry()
        assert geometry.angle_of_lba(0) == 0.0
        assert geometry.angle_of_lba(15) == pytest.approx(0.5)
        assert geometry.angle_of_lba(30) == 0.0  # next head, sector 0


class TestLinearZcav:
    def test_monotone_decreasing_density(self):
        zones = make_linear_zcav_zones(10, 1000, outer_spt=600,
                                       inner_spt=400)
        densities = [zone.sectors_per_track for zone in zones]
        assert densities[0] == 600
        assert densities[-1] == 400
        assert densities == sorted(densities, reverse=True)

    def test_cylinder_count_preserved(self):
        zones = make_linear_zcav_zones(7, 1003, 500, 300)
        assert sum(zone.cylinders for zone in zones) == 1003

    def test_single_zone(self):
        zones = make_linear_zcav_zones(1, 100, 500, 300)
        assert len(zones) == 1
        assert zones[0].sectors_per_track == 500

    def test_inverted_ratio_rejected(self):
        with pytest.raises(ValueError):
            make_linear_zcav_zones(4, 100, outer_spt=300, inner_spt=500)


class TestPaperDrives:
    @pytest.mark.parametrize("spec", [IBM_DDYS_T36950N, WDC_WD200BB])
    def test_outer_inner_ratio_near_paper(self, spec):
        """§5.1: inner:outer typically 2:3 (some drives up to 1:2)."""
        geometry = spec.geometry()
        outer = geometry.media_rate(0)
        inner = geometry.media_rate(geometry.total_sectors - 1)
        assert 1.3 <= outer / inner <= 2.1

    def test_scsi_capacity_class(self):
        capacity = IBM_DDYS_T36950N.geometry().capacity_bytes
        assert 30e9 < capacity < 45e9

    def test_ide_capacity_class(self):
        capacity = WDC_WD200BB.geometry().capacity_bytes
        assert 15e9 < capacity < 25e9


@given(st.integers(min_value=0))
@settings(max_examples=200, deadline=None)
def test_lba_chs_roundtrip(seed):
    geometry = IBM_DDYS_T36950N.geometry()
    lba = seed % geometry.total_sectors
    cyl, head, sector = geometry.lba_to_chs(lba)
    assert geometry.chs_to_lba(cyl, head, sector) == lba


@given(st.integers(min_value=0))
@settings(max_examples=100, deadline=None)
def test_cylinder_of_lba_matches_chs(seed):
    geometry = WDC_WD200BB.geometry()
    lba = seed % geometry.total_sectors
    assert geometry.cylinder_of_lba(lba) == geometry.lba_to_chs(lba)[0]


@given(st.integers(min_value=1))
@settings(max_examples=100, deadline=None)
def test_media_rate_never_increases_with_lba(seed):
    geometry = WDC_WD200BB.geometry()
    lba = seed % (geometry.total_sectors - 1)
    assert geometry.media_rate(lba) >= geometry.media_rate(lba + 1) - 1e-9
