"""Unit tests for the seek and rotation models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import RotationModel, SeekModel


def model(cylinders=10_000):
    return SeekModel(track_to_track=0.001, average=0.005,
                     full_stroke=0.012, cylinders=cylinders)


class TestSeekModel:
    def test_zero_distance_is_free(self):
        assert model().seek_time(0) == 0.0

    def test_track_to_track_anchor(self):
        assert model().seek_time(1) == pytest.approx(0.001)

    def test_full_stroke_anchor(self):
        seek = model()
        assert seek.seek_time(9_999) == pytest.approx(0.012, rel=0.01)

    def test_average_seek_near_third_stroke(self):
        seek = model()
        assert seek.seek_time(10_000 // 3) == pytest.approx(0.005,
                                                            rel=0.10)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            model().seek_time(-1)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            SeekModel(track_to_track=0.01, average=0.005,
                      full_stroke=0.012, cylinders=100)

    @given(st.integers(min_value=0, max_value=9_999))
    @settings(max_examples=200, deadline=None)
    def test_monotone_nondecreasing(self, distance):
        seek = model()
        assert seek.seek_time(distance + 1) >= seek.seek_time(distance) \
            - 1e-12

    @given(st.integers(min_value=1, max_value=9_999))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_anchors(self, distance):
        seek = model()
        time = seek.seek_time(distance)
        assert 0 < time <= 0.012 * 1.01


class TestRotationModel:
    def test_revolution_time(self):
        rotation = RotationModel(rpm=6000)
        assert rotation.revolution_time == pytest.approx(0.01)

    def test_angle_cycles(self):
        rotation = RotationModel(rpm=6000)
        assert rotation.angle_at(0.0) == 0.0
        assert rotation.angle_at(0.005) == pytest.approx(0.5)
        assert rotation.angle_at(0.01) == pytest.approx(0.0)

    def test_latency_to_target_ahead(self):
        rotation = RotationModel(rpm=6000)
        # At t=0 the head is at angle 0; angle 0.25 is 2.5 ms away.
        assert rotation.latency_to(0.0, 0.25) == pytest.approx(0.0025)

    def test_latency_wraps_around(self):
        rotation = RotationModel(rpm=6000)
        # At t=2.6ms the head is at angle 0.26; angle 0.25 requires
        # nearly a full revolution.
        latency = rotation.latency_to(0.0026, 0.25)
        assert latency == pytest.approx(0.0099, rel=0.01)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False),
           st.floats(min_value=0, max_value=0.999))
    @settings(max_examples=200, deadline=None)
    def test_latency_always_less_than_revolution(self, now, angle):
        rotation = RotationModel(rpm=7200)
        latency = rotation.latency_to(now, angle)
        assert 0 <= latency < rotation.revolution_time + 1e-12
