"""Unit tests for drive presets and partitioning."""

import pytest

from repro.disk import (IBM_DDYS_T36950N, Partition, WDC_WD200BB,
                        make_partitions)
from repro.sim import Simulator


class TestDriveSpecs:
    def test_scsi_preset_character(self):
        spec = IBM_DDYS_T36950N
        assert spec.rpm == 10_000
        assert spec.supports_tagged_queueing
        assert spec.cache_replacement == "lru"
        assert spec.seek_average < WDC_WD200BB.seek_average

    def test_ide_preset_character(self):
        spec = WDC_WD200BB
        assert spec.rpm == 7_200
        assert not spec.supports_tagged_queueing
        assert spec.cache_replacement == "mru"

    def test_build_applies_capability_default(self):
        sim = Simulator()
        scsi = IBM_DDYS_T36950N.build(sim)
        ide = WDC_WD200BB.build(sim)
        assert scsi.tagged_queueing
        assert not ide.tagged_queueing

    def test_build_names_drive(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim, name="bench-disk")
        assert drive.name == "bench-disk"

    def test_seek_model_from_datasheet(self):
        seek = WDC_WD200BB.seek_model()
        assert seek.seek_time(1) == pytest.approx(
            WDC_WD200BB.seek_track_to_track)

    def test_ide_media_faster_than_scsi_outer(self):
        """The WD200BB's outer zone outruns the DDYS — which is why
        ide1 beats scsi1 on the local benchmark despite 7200 vs 10k
        RPM (more sectors per track)."""
        ide = WDC_WD200BB.geometry()
        scsi = IBM_DDYS_T36950N.geometry()
        assert ide.media_rate(0) > scsi.media_rate(0)


class TestPartition:
    def test_contains(self):
        partition = Partition("p", first_lba=100, sectors=50)
        assert partition.contains(100)
        assert partition.contains(149)
        assert not partition.contains(99)
        assert not partition.contains(150)

    def test_capacity(self):
        partition = Partition("p", first_lba=0, sectors=2048)
        assert partition.capacity_bytes == 2048 * 512

    def test_make_partitions_cover_disk_exactly(self):
        geometry = WDC_WD200BB.geometry()
        partitions = make_partitions(geometry, count=4)
        assert partitions[0].first_lba == 0
        assert partitions[-1].end_lba == geometry.total_sectors
        for left, right in zip(partitions, partitions[1:]):
            assert left.end_lba == right.first_lba

    def test_roughly_equal_sizes(self):
        geometry = IBM_DDYS_T36950N.geometry()
        partitions = make_partitions(geometry, count=4)
        sizes = [partition.sectors for partition in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_names_numbered_from_one(self):
        geometry = WDC_WD200BB.geometry()
        partitions = make_partitions(geometry, prefix="ide")
        assert [p.name for p in partitions] == \
            ["ide1", "ide2", "ide3", "ide4"]

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            make_partitions(WDC_WD200BB.geometry(), count=0)
