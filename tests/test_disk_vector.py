"""Bit-identity of the vectorized disk-mechanics batch paths.

The batch helpers (`SeekModel.seek_times`, `RotationModel.latencies_to`,
`DiskGeometry.cylinders_of_lbas` / `angles_of_lbas`, and
`DiskDrive.positioning_times`) may run through numpy.  Every test here
asserts *exact* float equality against the scalar code they replace:
the whole kernel-determinism story rests on batch math never drifting
by an ulp.
"""

import random

import pytest

from repro.disk.geometry import DiskGeometry, Zone, make_linear_zcav_zones
from repro.disk.mechanics import VECTOR_MIN, RotationModel, SeekModel


@pytest.fixture
def geometry():
    return DiskGeometry(
        "vectest", rpm=7200, heads=4,
        zones=make_linear_zcav_zones(8, cylinders=4000, outer_spt=640,
                                     inner_spt=420))


@pytest.fixture
def seek_model(geometry):
    return SeekModel(track_to_track=0.0008, average=0.0085,
                     full_stroke=0.016, cylinders=geometry.cylinders)


class TestSeekBatch:
    def test_matches_scalar_exactly(self, seek_model):
        rng = random.Random(11)
        distances = [0, 1, 2, seek_model._knee, seek_model._knee + 1,
                     seek_model.cylinders - 1]
        distances += [rng.randrange(seek_model.cylinders)
                      for _ in range(500)]
        batch = seek_model.seek_times(distances)
        scalar = [seek_model.seek_time(d) for d in distances]
        assert batch == scalar

    def test_small_batches_match_too(self, seek_model):
        # Below VECTOR_MIN the scalar fallback runs; both must agree.
        for size in range(VECTOR_MIN + 2):
            distances = list(range(size))
            assert seek_model.seek_times(distances) == \
                [seek_model.seek_time(d) for d in distances]

    def test_negative_distance_rejected(self, seek_model):
        with pytest.raises(ValueError):
            seek_model.seek_times([1, 2, -1] + [3] * VECTOR_MIN)


class TestRotationBatch:
    def test_matches_scalar_exactly(self):
        rotation = RotationModel(rpm=7200)
        rng = random.Random(12)
        nows = [rng.random() * 100 for _ in range(500)]
        angles = [rng.random() for _ in range(500)]
        # Include out-of-range angles, which the scalar path normalizes.
        angles[:4] = [1.0, 1.75, -0.25, 2.0]
        batch = rotation.latencies_to(nows, angles)
        scalar = [rotation.latency_to(now, angle)
                  for now, angle in zip(nows, angles)]
        assert batch == scalar


class TestGeometryBatch:
    def test_cylinders_match_scalar_exactly(self, geometry):
        rng = random.Random(13)
        lbas = [0, geometry.total_sectors - 1]
        lbas += [rng.randrange(geometry.total_sectors) for _ in range(500)]
        assert geometry.cylinders_of_lbas(lbas) == \
            [geometry.cylinder_of_lba(lba) for lba in lbas]

    def test_angles_match_scalar_exactly(self, geometry):
        rng = random.Random(14)
        lbas = [rng.randrange(geometry.total_sectors) for _ in range(500)]
        assert geometry.angles_of_lbas(lbas) == \
            [geometry.angle_of_lba(lba) for lba in lbas]

    def test_zone_boundaries_are_exercised(self, geometry):
        # Every zone boundary LBA, from both sides.
        lbas = []
        for first in geometry._zone_first_lba:
            if first > 0:
                lbas.append(first - 1)
            lbas.append(first)
        assert geometry.cylinders_of_lbas(lbas) == \
            [geometry.cylinder_of_lba(lba) for lba in lbas]
        assert geometry.angles_of_lbas(lbas) == \
            [geometry.angle_of_lba(lba) for lba in lbas]

    def test_out_of_range_rejected(self, geometry):
        with pytest.raises(ValueError):
            geometry.cylinders_of_lbas(
                [geometry.total_sectors] * (VECTOR_MIN + 1))
        with pytest.raises(ValueError):
            geometry.angles_of_lbas([-1] * (VECTOR_MIN + 1))


class TestDrivePositioningBatch:
    def test_positioning_times_match_scalar(self):
        """Batch positioning over a synthetic queue == scalar loop.

        Two drives in identical states probe their caches in the same
        order, so the LRU mutations agree and the estimates must be
        equal floats.
        """
        from repro.disk.request import DiskRequest
        from repro.sim import Simulator

        def build():
            sim = Simulator()
            geometry = DiskGeometry(
                "drv", rpm=7200, heads=2,
                zones=[Zone(cylinders=500, sectors_per_track=500),
                       Zone(cylinders=500, sectors_per_track=400)])
            seek = SeekModel(track_to_track=0.0008, average=0.0085,
                             full_stroke=0.016,
                             cylinders=geometry.cylinders)
            from repro.disk.drive import DiskDrive
            drive = DiskDrive(sim, geometry, seek,
                              interface_rate=160e6)
            return sim, drive

        rng = random.Random(15)
        requests = [
            DiskRequest(id=i, lba=rng.randrange(900_000), nsectors=64)
            for i in range(40)]

        _sim_a, drive_a = build()
        scalar = [drive_a.positioning_time(request)
                  for request in requests]
        _sim_b, drive_b = build()
        batch = drive_b.positioning_times(requests)
        assert batch == scalar
