"""Unit tests for the experiment sweep helpers (with a stub runner)."""

from repro.bench.readers import ReaderResult
from repro.bench.runner import RunResult
from repro.experiments.common import (completion_distribution,
                                      sweep_readers, sweep_strides)
from repro.host import TestbedConfig

MB = 1 << 20


def stub_result(throughput_mb_s, nreaders=1):
    readers = []
    for index in range(nreaders):
        reader = ReaderResult(f"r{index}")
        reader.bytes_read = MB
        reader.start_time = 0.0
        reader.finish_time = (index + 1) / throughput_mb_s / nreaders
        readers.append(reader)
    return RunResult(readers=readers, total_bytes=nreaders * MB)


class TestSweepReaders:
    def test_structure(self):
        calls = []

        def run_once(config, nreaders, scale):
            calls.append((config.seed, nreaders, scale))
            return stub_result(10.0)

        figure = sweep_readers(
            "t", [("a", TestbedConfig()), ("b", TestbedConfig())],
            run_once, reader_counts=(1, 4), scale=0.5, runs=2, seed=7)
        assert figure.labels == ["a", "b"]
        assert figure.get("a").xs == [1, 4]
        assert figure.get("a").at(1).count == 2
        # 2 configs x 2 points x 2 runs.
        assert len(calls) == 8
        assert all(scale == 0.5 for _seed, _n, scale in calls)

    def test_seeds_vary_per_run_and_point(self):
        seeds = []

        def run_once(config, nreaders, scale):
            seeds.append(config.seed)
            return stub_result(1.0)

        sweep_readers("t", [("a", TestbedConfig())], run_once,
                      reader_counts=(1, 2), scale=1.0, runs=2, seed=0)
        assert len(set(seeds)) == len(seeds)


class TestSweepStrides:
    def test_structure(self, monkeypatch):
        import repro.experiments.common as common

        def fake_stride(config, strides, scale):
            return stub_result(float(strides))

        monkeypatch.setattr(common, "run_stride_once", fake_stride)
        figure = sweep_strides("t", [("x", TestbedConfig())],
                               strides=(2, 8), scale=1.0, runs=1)
        assert figure.get("x").at(2).mean == 2.0
        assert figure.get("x").at(8).mean == 8.0


class TestCompletionDistribution:
    def test_positions_sorted_and_averaged(self, monkeypatch):
        import repro.experiments.common as common

        def fake_local(config, nreaders, scale):
            return stub_result(4.0, nreaders=nreaders)

        monkeypatch.setattr(common, "run_local_once", fake_local)
        figure = completion_distribution(
            "t", [("cfg", TestbedConfig())], nreaders=4, runs=3)
        series = figure.get("cfg")
        assert series.xs == [1, 2, 3, 4]
        means = series.means
        assert means == sorted(means)
        assert series.at(1).count == 3
