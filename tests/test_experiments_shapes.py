"""Shape tests: the paper's qualitative claims, at reduced scale.

These run each experiment at a small scale and assert the *relations*
the paper reports (who wins, roughly by how much) — not the absolute
MB/s, which belong to the authors' hardware.  They are the regression
net for the whole model: if a change to any subsystem breaks a paper
claim, one of these fails.
"""

from pathlib import Path

import pytest

import repro.experiments as experiments_pkg
from repro.experiments import all_experiments, get

SCALE = 1 / 16
RUNS = 1


#: Experiments whose effects need longer files to mature (the nfsheur
#: thrash of figs 6-7 builds up over a run) get a larger scale.
SCALE_OVERRIDES = {"fig6": 1 / 8, "fig7": 1 / 8}


@pytest.fixture(scope="module")
def figures():
    """Run every experiment once at small scale (module-cached)."""
    return {experiment.id: experiment.run(
                scale=SCALE_OVERRIDES.get(experiment.id, SCALE),
                runs=RUNS, seed=7)
            for experiment in all_experiments()}


class TestRegistry:
    def test_every_experiment_module_is_registered(self):
        """The registry is discovered, not hand-listed.

        Every experiment module (``<id>_<slug>.py`` next to the
        registry) must register exactly the id its filename declares —
        so adding an experiment module without registering it, or
        registering an id with no module, fails here without anyone
        editing a hardcoded list.
        """
        module_dir = Path(experiments_pkg.__file__).parent
        support = {"__init__", "registry", "common"}
        expected = {path.stem.split("_")[0]
                    for path in module_dir.glob("*.py")
                    if path.stem not in support}
        ids = [experiment.id for experiment in all_experiments()]
        assert set(ids) == expected
        assert len(ids) == len(set(ids)), "duplicate experiment ids"

    def test_listing_is_sorted_and_get_round_trips(self):
        ids = [experiment.id for experiment in all_experiments()]
        assert ids == sorted(ids)
        for experiment in all_experiments():
            assert get(experiment.id) is experiment

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("fig99")

    def test_every_experiment_has_claim(self):
        for experiment in all_experiments():
            assert experiment.paper_claim
            assert experiment.title
            assert callable(experiment.runner)


class TestFig1Zcav(object):
    def test_outer_beats_inner(self, figures):
        figure = figures["fig1"]
        # IDE (no tagged queues): the clean ZCAV contrast, point by
        # point.  SCSI: tagged queueing adds noise that can invert
        # single points (the paper's own observation), so compare the
        # curve averages.
        for x in (1, 2, 4, 8, 16, 32):
            assert figure.get("ide1").at(x).mean > \
                figure.get("ide4").at(x).mean
        scsi_outer = figure.get("scsi1").means
        scsi_inner = figure.get("scsi4").means
        assert sum(scsi_outer) > sum(scsi_inner)

    def test_ide_gradient_near_media_ratio(self, figures):
        figure = figures["fig1"]
        ratio = figure.get("ide1").at(1).mean / \
            figure.get("ide4").at(1).mean
        assert 1.2 <= ratio <= 1.7


class TestFig2TaggedQueues(object):
    def test_no_tags_wins_for_concurrent_readers(self, figures):
        figure = figures["fig2"]
        for x in (4, 8, 16, 32):
            assert figure.get("scsi1/no-tags").at(x).mean > \
                1.3 * figure.get("scsi1/tags").at(x).mean

    def test_tags_single_reader_spike(self, figures):
        """With tags: single-reader spike, then a fall-off."""
        series = figures["fig2"].get("scsi1/tags")
        assert series.at(1).mean > 1.5 * series.at(8).mean

    def test_no_tags_barely_dips(self, figures):
        series = figures["fig2"].get("scsi1/no-tags")
        assert series.at(32).mean > 0.85 * series.at(1).mean


class TestFig3Fairness(object):
    def test_elevator_staircase(self, figures):
        series = figures["fig3"].get("ide1/elevator")
        first = series.at(1).mean
        last = series.at(8).mean
        assert last / first > 4.0   # paper: 6-7x

    def test_ncscan_is_fair(self, figures):
        series = figures["fig3"].get("ide1/n-cscan")
        spread = series.at(8).mean / series.at(1).mean
        assert spread < 1.25        # paper: < 20% spread

    def test_fairness_costs_throughput(self, figures):
        figure = figures["fig3"]
        elevator_last = figure.get("ide1/elevator").at(8).mean
        ncscan_last = figure.get("ide1/n-cscan").at(8).mean
        assert ncscan_last > 1.5 * elevator_last

    def test_firmware_fair_but_slowest(self, figures):
        figure = figures["fig3"]
        tags = figure.get("scsi1/elevator/tags")
        spread = tags.at(8).mean / tags.at(1).mean
        assert spread < 2.0
        assert tags.at(8).mean > \
            figure.get("scsi1/elevator/no-tags").at(8).mean


class TestFig4Udp(object):
    def test_throughput_falls_with_concurrency(self, figures):
        series = figures["fig4"].get("ide1")
        assert series.at(32).mean < 0.6 * series.at(1).mean

    def test_zcav_still_visible(self, figures):
        # At one reader NFS is protocol-bound, so the ZCAV gap shows up
        # once the disk becomes the bottleneck (many readers).
        figure = figures["fig4"]
        outer = figure.get("ide1")
        inner = figure.get("ide4")
        assert outer.at(16).mean + outer.at(32).mean > \
            inner.at(16).mean + inner.at(32).mean

    def test_nfs_about_half_of_local(self, figures):
        local = figures["fig1"].get("ide1").at(1).mean
        nfs = figures["fig4"].get("ide1").at(1).mean
        assert 0.3 * local < nfs < 0.85 * local


class TestFig5Tcp(object):
    def test_udp_beats_tcp_at_low_concurrency(self, figures):
        udp = figures["fig4"].get("ide1").at(1).mean
        tcp = figures["fig5"].get("ide1").at(1).mean
        assert udp > 1.2 * tcp

    def test_tcp_flatter_than_udp(self, figures):
        udp = figures["fig4"].get("scsi1")
        tcp = figures["fig5"].get("scsi1")
        udp_drop = udp.at(1).mean / udp.at(32).mean
        tcp_drop = tcp.at(1).mean / tcp.at(32).mean
        assert tcp_drop < udp_drop


class TestFig6ReadaheadPotential(object):
    def test_always_beats_default_at_high_concurrency(self, figures):
        figure = figures["fig6"]
        assert figure.get("always/idle").at(32).mean > \
            1.25 * figure.get("default/idle").at(32).mean

    def test_busy_client_slower_overall(self, figures):
        figure = figures["fig6"]
        for x in (1, 2, 4):
            assert figure.get("default/busy").at(x).mean < \
                figure.get("default/idle").at(x).mean

    def test_busy_gap_comparable_to_idle_gap(self, figures):
        """The paper reports the Always-vs-Default gap *shrinks* under
        client CPU load; in our model the high-concurrency gap is
        nfsheur-driven and load-independent, so we assert the weaker,
        honest form: the busy gap does not blow up relative to idle
        (recorded as a deviation in EXPERIMENTS.md)."""
        figure = figures["fig6"]
        idle_gap = (figure.get("always/idle").at(32).mean
                    - figure.get("default/idle").at(32).mean)
        busy_gap = (figure.get("always/busy").at(32).mean
                    - figure.get("default/busy").at(32).mean)
        assert busy_gap < idle_gap * 1.4


class TestFig7Nfsheur(object):
    def test_new_table_recovers_always_level(self, figures):
        figure = figures["fig7"]
        always = figure.get("always").at(32).mean
        new_table = figure.get("default/new-nfsheur").at(32).mean
        assert new_table > 0.7 * always

    def test_default_table_is_the_bottleneck(self, figures):
        figure = figures["fig7"]
        assert figure.get("default/new-nfsheur").at(32).mean > \
            1.2 * figure.get("default/default-nfsheur").at(32).mean

    def test_slowdown_adds_nothing_over_default_with_new_table(
            self, figures):
        figure = figures["fig7"]
        slowdown = figure.get("slowdown/new-nfsheur").at(32).mean
        default = figure.get("default/new-nfsheur").at(32).mean
        assert abs(slowdown - default) / default < 0.35


class TestFig8AndTable1(object):
    def test_cursor_beats_default_in_every_cell(self, figures):
        figure = figures["fig8"]
        for fs in ("ide1", "scsi1"):
            for strides in (2, 4, 8):
                cursor = figure.get(f"{fs}/cursor").at(strides).mean
                default = figure.get(f"{fs}/default").at(strides).mean
                assert cursor > 1.15 * default

    def test_ide_default_dips_at_eight_strides(self, figures):
        series = figures["fig8"].get("ide1/default")
        assert series.at(8).mean < 0.8 * series.at(2).mean

    def test_scsi_default_stays_flat(self, figures):
        series = figures["fig8"].get("scsi1/default")
        assert series.at(8).mean > 0.75 * series.at(2).mean

    def test_ide_gain_largest_at_eight_strides(self, figures):
        figure = figures["fig8"]
        gain = {strides: figure.get("ide1/cursor").at(strides).mean /
                figure.get("ide1/default").at(strides).mean
                for strides in (2, 4, 8)}
        assert gain[8] == max(gain.values())

    def test_table1_reports_std(self, figures):
        figure = figures["table1"]
        for series in figure.series:
            for _x, summary in series.points:
                assert summary.std >= 0.0
                assert summary.count == RUNS


class TestExtensionExperiments(object):
    """Shape checks for the Section 8 / related-work extensions."""

    def test_lossy_udp_collapses_tcp_degrades(self, figures):
        figure = figures["xlossy"]
        udp = figure.get("udp")
        tcp = figure.get("tcp")
        # At 2% frame loss UDP has lost >90% of its lossless
        # throughput; TCP less than 70%.
        assert udp.at(0.02).mean < 0.1 * udp.at(0.0).mean
        assert tcp.at(0.02).mean > 0.3 * tcp.at(0.0).mean
        assert tcp.at(0.005).mean > 3 * udp.at(0.005).mean

    def test_mixed_writers_erode_reads_but_ordering_survives(
            self, figures):
        figure = figures["xmixed"]
        for label in figure.labels:
            series = figure.get(label)
            assert series.at(4).mean < series.at(0).mean
        assert figure.get("always").at(4).mean >= \
            0.9 * figure.get("default/default-nfsheur").at(4).mean

    def test_namespace_attrcache_window_dominates(self, figures):
        """xnamespace: disabling the attribute cache (acregmax=0)
        collapses stat() throughput on both transports — the mount
        option dwarfs everything else in the metadata workload."""
        figure = figures["xnamespace"]
        udp = figure.get("udp")
        tcp = figure.get("tcp")
        for series in (udp, tcp):
            assert series.at(0.0).mean < 0.5 * series.at(60.0).mean
        # Cache off, every probe is a synchronous RPC: the per-call
        # transport cost separates udp from tcp clearly.
        assert udp.at(0.0).mean > 1.5 * tcp.at(0.0).mean

    def test_aged_fs_readahead_value_stays_large(self, figures):
        figure = figures["xaged"]
        for fragmentation in (0.0, 0.5):
            assert figure.get("always").at(fragmentation).mean > \
                3 * figure.get("no-readahead").at(fragmentation).mean

    def test_xfaults_publishes_per_run_detail(self, figures):
        """Satellite of the chaos PR: the per-run recovery counters
        behind the summarised goodput points survive into
        ``figure.detail`` instead of being averaged away."""
        records = figures["xfaults"].detail
        # 4 combos x 4 loss rates x RUNS runs.
        assert len(records) == 4 * 4 * RUNS
        required = {"label", "transport", "soft", "mean_loss",
                    "run_index", "seed", "goodput_mb_s", "error_rate",
                    "rpc_timeouts", "retransmits",
                    "tcp_segment_retransmits", "dupreq_hits",
                    "dupreq_evictions", "duplicate_executions",
                    "verifier_resends", "commit_retries",
                    "server_crashes"}
        for record in records:
            assert required <= set(record)
            assert record["duplicate_executions"] == 0
        lossy_udp = [r for r in records
                     if r["transport"] == "udp" and r["mean_loss"] > 0]
        assert any(r["retransmits"] > 0 for r in lossy_udp)
        clean = [r for r in records if r["mean_loss"] == 0.0]
        assert all(r["retransmits"] == 0 for r in clean)
