"""Trace-export identity: export -> import -> export is byte-stable.

The diagnosis engine consumes traces *from disk*, so the export must be
deterministic (sorted keys, compact separators — the same bytes for the
same spans, every time) and the import must be lossless (the raw
``t0``/``t1`` seconds ride in ``args``, so float microseconds never
corrupt a timestamp).  These tests pin both properties, including the
degenerate empty-stream case a failed run can produce.
"""

import json

from repro.obs.export import dumps_trace, loads_trace
from repro.obs.span import Span


def make_span(span_id, cat, start, end, parent=None, detached=False,
              **args):
    span = Span(None, span_id, f"{cat}#{span_id}", cat, parent, start,
                detached, args)
    span.end = end
    return span


def synthetic_stream():
    """A small stream with the awkward cases: float timestamps that do
    not survive a trip through microseconds, a detached child, nested
    args, and two runs."""
    return [
        make_span(1, "bench", 0.0, 0.1 + 0.2, run=0),
        make_span(2, "client.vnode", 0.05, 0.2, parent=1, run=0,
                  offset=65536, nbytes=8192),
        make_span(3, "client.nfsiod", 0.06, 0.4, parent=2,
                  detached=True, run=0),
        make_span(4, "bench", 1e-9, 1.0 / 3.0, run=1),
        make_span(5, "disk.mechanics", 0.01, 0.02, parent=4, run=1,
                  zone=7),
    ]


class TestRoundTrip:
    def test_export_import_export_is_byte_identical(self):
        first = dumps_trace(synthetic_stream())
        second = dumps_trace(loads_trace(first))
        assert second == first

    def test_import_reconstructs_every_span_key(self):
        spans = synthetic_stream()
        loaded = loads_trace(dumps_trace(spans))
        assert [span.key() for span in loaded] == \
            [span.key() for span in spans]

    def test_exact_seconds_survive_despite_microsecond_display(self):
        spans = synthetic_stream()
        loaded = loads_trace(dumps_trace(spans))
        for original, copy in zip(spans, loaded):
            assert copy.start == original.start   # == , not approx
            assert copy.end == original.end

    def test_repeated_export_is_deterministic(self):
        spans = synthetic_stream()
        assert dumps_trace(spans) == dumps_trace(spans)


class TestEmptyStream:
    def test_empty_stream_round_trips_byte_identically(self):
        first = dumps_trace([])
        assert loads_trace(first) == []
        assert dumps_trace(loads_trace(first)) == first

    def test_empty_stream_is_valid_trace_event_json(self):
        payload = json.loads(dumps_trace([]))
        assert payload["traceEvents"] == []
        assert payload["otherData"]["categories"] == []


class TestStableSerialisation:
    def test_keys_are_sorted_and_separators_compact(self):
        text = dumps_trace(synthetic_stream())
        payload = json.loads(text)
        assert json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) == text

    def test_non_complete_events_are_ignored_on_import(self):
        payload = json.loads(dumps_trace(synthetic_stream()))
        payload["traceEvents"].append(
            {"ph": "M", "name": "process_name", "pid": 1, "args": {}})
        loaded = loads_trace(json.dumps(payload))
        assert len(loaded) == len(synthetic_stream())
