"""Unit and end-to-end tests for the fault-injection subsystem."""

import random

import pytest

from repro.bench.runner import run_faulted_once
from repro.faults import (DiskFaults, FaultPlan, FaultSpec, GilbertElliott,
                          NetworkFaultInjector, NetworkFaults, ServerFaults,
                          ServerFaultInjector)
from repro.faults.disk import DiskFaultInjector
from repro.faults.network import DROP_PARTITION
from repro.host.testbed import TestbedConfig
from repro.sim.rand import RandomStreams


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

class TestSpecs:
    def test_network_validation(self):
        with pytest.raises(ValueError):
            NetworkFaults(loss_bad=1.5)
        with pytest.raises(ValueError):
            NetworkFaults(p_enter_bad=-0.1)
        with pytest.raises(ValueError):
            NetworkFaults(partitions=((1.0, -2.0),))

    def test_from_mean_loss_hits_the_target(self):
        for target in (0.001, 0.01, 0.05):
            spec = NetworkFaults.from_mean_loss(target, burst_frames=4.0)
            assert spec.mean_loss == pytest.approx(target, rel=1e-9)

    def test_from_mean_loss_measured_rate(self):
        spec = NetworkFaults.from_mean_loss(0.02, burst_frames=4.0)
        chain = GilbertElliott(spec, random.Random(1234))
        steps = 400_000
        lost = sum(chain.step() for _ in range(steps))
        assert lost / steps == pytest.approx(0.02, rel=0.15)

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(network=NetworkFaults()).any_faults
        assert FaultSpec(disk=DiskFaults(media_error_rate=0.1)).any_faults


# ---------------------------------------------------------------------------
# Injectors
# ---------------------------------------------------------------------------

class TestNetworkInjector:
    def test_same_seed_same_fates(self):
        spec = NetworkFaults.from_mean_loss(0.05, burst_frames=4.0)

        def fates(seed):
            streams = RandomStreams(seed)
            injector = NetworkFaultInjector(spec, streams.stream("net:up"))
            return [injector.datagram_fate(6, now=float(i))
                    for i in range(500)]

        assert fates(7) == fates(7)
        assert fates(7) != fates(8)

    def test_partition_window(self):
        spec = NetworkFaults(partitions=((1.0, 0.5),))
        injector = NetworkFaultInjector(spec, random.Random(0))
        assert injector.partition_wait(0.5) == 0.0
        assert injector.partition_wait(1.2) == pytest.approx(0.3)
        assert injector.partition_wait(1.6) == 0.0
        assert injector.datagram_fate(6, now=1.2) == DROP_PARTITION
        assert injector.partition_drops == 1

    def test_tcp_counts_dead_frames_individually(self):
        spec = NetworkFaults(loss_good=1.0, loss_bad=1.0)
        injector = NetworkFaultInjector(spec, random.Random(0))
        assert injector.frame_losses(6) == 6
        assert injector.frames_lost == 6

    def test_burst_window_validation(self):
        with pytest.raises(ValueError):
            NetworkFaults(burst_windows=((1.0, -1.0, 0.5),))
        with pytest.raises(ValueError):
            NetworkFaults(burst_windows=((1.0, 1.0, 0.0),))
        with pytest.raises(ValueError):
            NetworkFaults(burst_windows=((1.0, 1.0, 1.5),))

    def test_burst_window_loses_frames_only_while_open(self):
        spec = NetworkFaults(burst_windows=((1.0, 2.0, 1.0),))
        injector = NetworkFaultInjector(spec, random.Random(0))
        # Outside the window the link is clean.
        assert injector.datagram_fate(6, now=0.5) == "deliver"
        assert injector.frame_losses(6, now=3.5) == 0
        # Inside, a rate-1.0 burst kills every frame.
        assert injector.datagram_fate(6, now=1.5) == "drop-loss"
        assert injector.frame_losses(6, now=2.9) == 6
        assert injector.burst_losses == 12
        # TCP call sites that predate `now` still work (no burst).
        assert injector.frame_losses(6) == 0


class TestDiskInjector:
    def test_media_errors_add_latency_to_media_reads_only(self):
        spec = DiskFaults(media_error_rate=1.0, media_retry_time=0.015)
        injector = DiskFaultInjector(spec, random.Random(0))
        extra, reset = injector.service_penalty(media_read=True, now=0.0)
        assert extra == pytest.approx(0.015)
        assert not reset
        extra, _ = injector.service_penalty(media_read=False, now=0.0)
        assert extra == 0.0
        assert injector.media_errors == 1

    def test_reset_schedule(self):
        spec = DiskFaults(reset_interval=1.0, reset_latency=0.5)
        injector = DiskFaultInjector(spec, random.Random(0))
        _, reset = injector.service_penalty(media_read=True, now=0.5)
        assert not reset
        extra, reset = injector.service_penalty(media_read=True, now=1.5)
        assert reset and extra == pytest.approx(0.5)
        # Re-arms relative to the reset, not the epoch.
        _, reset = injector.service_penalty(media_read=True, now=2.0)
        assert not reset
        assert injector.resets == 1


class TestServerInjector:
    def test_schedule_is_time_ordered(self):
        spec = ServerFaults(crash_times=(5.0, 1.0), stall_times=(3.0,))
        injector = ServerFaultInjector(spec)
        assert injector.has_events
        assert [when for when, _ in injector.schedule()] == [1.0, 3.0, 5.0]

    def test_plan_builds_injectors_per_stream(self):
        spec = FaultSpec(network=NetworkFaults(loss_good=0.1),
                         disk=DiskFaults(media_error_rate=0.1),
                         server=ServerFaults(crash_times=(1.0,)))
        plan = FaultPlan(spec, RandomStreams(3))
        up = plan.network_injector("up0")
        down = plan.network_injector("down0")
        # Different directions draw from independent streams.
        assert [up._rng.random() for _ in range(4)] != \
            [down._rng.random() for _ in range(4)]
        assert plan.disk_injector() is not None
        assert plan.server_injector() is not None


# ---------------------------------------------------------------------------
# End to end through the testbed
# ---------------------------------------------------------------------------

SCALE = 0.03125  # 8 MB working set: fast, still hundreds of RPCs


def lossy_config(transport="udp", soft=False, mean_loss=0.03, seed=11):
    return TestbedConfig(
        drive="ide", partition=1, transport=transport,
        faults=FaultSpec(network=NetworkFaults.from_mean_loss(
            mean_loss, burst_frames=4.0)),
        mount_soft=soft, seed=seed)


class TestFaultedRuns:
    def test_seeded_run_is_deterministic(self):
        first = run_faulted_once(lossy_config(), 2, scale=SCALE)
        second = run_faulted_once(lossy_config(), 2, scale=SCALE)
        assert first.goodput_mb_s == second.goodput_mb_s
        assert first.retransmits == second.retransmits
        assert first.dupreq_hits == second.dupreq_hits
        assert first.elapsed == second.elapsed

    def test_loss_degrades_goodput_and_triggers_recovery(self):
        clean = run_faulted_once(
            TestbedConfig(drive="ide", partition=1, seed=11), 2,
            scale=SCALE)
        lossy = run_faulted_once(lossy_config(), 2, scale=SCALE)
        assert lossy.goodput_mb_s < clean.goodput_mb_s
        assert lossy.retransmits > 0
        assert lossy.duplicate_executions == 0
        # A hard mount delivers every byte, however slowly.
        assert lossy.total_bytes == clean.total_bytes
        assert lossy.reader_errors == 0

    def test_server_crash_recovers_by_retransmission(self):
        config = TestbedConfig(
            drive="ide", partition=1, transport="udp",
            faults=FaultSpec(server=ServerFaults(crash_times=(0.05,),
                                                 restart_delay=0.2)),
            seed=11)
        result = run_faulted_once(config, 2, scale=SCALE)
        assert result.server_crashes == 1
        assert result.server_dropped > 0
        assert result.retransmits > 0
        assert result.reader_errors == 0
        assert result.goodput_mb_s > 0

    def test_tcp_survives_server_crash(self):
        config = TestbedConfig(
            drive="ide", partition=1, transport="tcp",
            faults=FaultSpec(server=ServerFaults(crash_times=(0.05,),
                                                 restart_delay=0.2)),
            seed=11)
        result = run_faulted_once(config, 2, scale=SCALE)
        assert result.server_crashes == 1
        assert result.reader_errors == 0
        assert result.goodput_mb_s > 0

    def test_soft_mount_surfaces_etimedout_during_partition(self):
        config = TestbedConfig(
            drive="ide", partition=1, transport="udp",
            faults=FaultSpec(network=NetworkFaults(
                partitions=((0.0, 60.0),))),
            mount_soft=True, seed=11)
        result = run_faulted_once(config, 2, scale=SCALE)
        assert result.reader_errors > 0
        assert result.rpc_timeouts > 0
        assert result.total_bytes == 0

    def test_hard_mount_outlasts_a_short_partition(self):
        config = TestbedConfig(
            drive="ide", partition=1, transport="udp",
            faults=FaultSpec(network=NetworkFaults(
                partitions=((0.01, 2.0),))),
            mount_soft=False, seed=11)
        result = run_faulted_once(config, 2, scale=SCALE)
        assert result.reader_errors == 0
        assert result.goodput_mb_s > 0
        assert result.elapsed > 2.0

    def test_disk_faults_slow_the_run_down(self):
        base = TestbedConfig(drive="ide", partition=1, seed=11)
        faulty = TestbedConfig(
            drive="ide", partition=1, seed=11,
            faults=FaultSpec(disk=DiskFaults(media_error_rate=0.5,
                                             media_retry_time=0.02)))
        clean = run_faulted_once(base, 2, scale=SCALE)
        slow = run_faulted_once(faulty, 2, scale=SCALE)
        assert slow.total_bytes == clean.total_bytes
        assert slow.elapsed > clean.elapsed
