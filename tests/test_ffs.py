"""Unit tests for the FFS layer: inodes, allocation, read path."""

import random

import pytest

from repro.disk import Partition, WDC_WD200BB
from repro.ffs import (AllocationError, Extent, FfsParams, FileSystem,
                       Inode, SequentialAllocator)
from repro.kernel import BufferCache, DiskIoScheduler
from repro.sim import Simulator

BLOCK = 8 * 1024


class TestExtentAndInode:
    def test_extent_validation(self):
        with pytest.raises(ValueError):
            Extent(file_block=0, disk_block=0, nblocks=0)
        with pytest.raises(ValueError):
            Extent(file_block=-1, disk_block=0, nblocks=1)

    def test_map_range_single_extent(self):
        inode = Inode("f", size=10 * BLOCK,
                      extents=[Extent(0, 100, 10)])
        assert inode.map_range(2, 3) == [(102, 3)]

    def test_map_range_across_extents(self):
        inode = Inode("f", size=10 * BLOCK,
                      extents=[Extent(0, 100, 5), Extent(5, 300, 5)])
        assert inode.map_range(3, 4) == [(103, 2), (300, 2)]

    def test_map_range_merges_adjacent_disk_runs(self):
        inode = Inode("f", size=10 * BLOCK,
                      extents=[Extent(0, 100, 5), Extent(5, 105, 5)])
        assert inode.map_range(0, 10) == [(100, 10)]

    def test_map_range_out_of_bounds(self):
        inode = Inode("f", size=5 * BLOCK, extents=[Extent(0, 100, 5)])
        with pytest.raises(ValueError):
            inode.map_range(3, 5)

    def test_nblocks(self):
        inode = Inode("f", size=0,
                      extents=[Extent(0, 0, 3), Extent(3, 10, 4)])
        assert inode.nblocks == 7

    def test_inode_numbers_unique(self):
        assert Inode("a", 1).number != Inode("b", 1).number


class TestAllocator:
    def partition(self):
        return Partition("test1", first_lba=0, sectors=1_000_000)

    def test_fresh_allocation_is_contiguous(self):
        allocator = SequentialAllocator(self.partition())
        inode = allocator.allocate("f", 100 * BLOCK)
        assert len(inode.extents) == 1
        assert inode.extents[0].nblocks == 100

    def test_files_allocated_in_order(self):
        allocator = SequentialAllocator(self.partition())
        first = allocator.allocate("a", 10 * BLOCK)
        second = allocator.allocate("b", 10 * BLOCK)
        assert second.first_disk_block() == \
            first.first_disk_block() + 10

    def test_partition_offset_respected(self):
        partition = Partition("p", first_lba=160_000, sectors=100_000)
        allocator = SequentialAllocator(partition)
        inode = allocator.allocate("f", BLOCK)
        assert inode.first_disk_block() * 16 >= 160_000

    def test_partial_block_rounds_up(self):
        allocator = SequentialAllocator(self.partition())
        inode = allocator.allocate("f", BLOCK + 1)
        assert inode.nblocks == 2

    def test_full_partition_rejected(self):
        partition = Partition("tiny", first_lba=0, sectors=32)
        allocator = SequentialAllocator(partition)
        with pytest.raises(AllocationError):
            allocator.allocate("big", 100 * BLOCK)

    def test_fragmentation_splits_files(self):
        allocator = SequentialAllocator(
            self.partition(), fragmentation=1.0, chunk_blocks=4,
            rng=random.Random(7))
        inode = allocator.allocate("f", 64 * BLOCK)
        assert len(inode.extents) > 1
        assert sum(e.nblocks for e in inode.extents) == 64

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SequentialAllocator(self.partition()).allocate("f", 0)

    def test_bad_fragmentation_rejected(self):
        with pytest.raises(ValueError):
            SequentialAllocator(self.partition(), fragmentation=1.5)


def build_fs(heuristic=None, params=None):
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    iosched = DiskIoScheduler(sim, drive)
    cache = BufferCache(sim, iosched, capacity_bytes=8 << 20)
    allocator = SequentialAllocator(
        Partition("p1", first_lba=0, sectors=4_000_000))
    fs = FileSystem(sim, cache, allocator, params=params,
                    heuristic=heuristic)
    return sim, drive, cache, fs


class TestFileSystem:
    def test_create_and_lookup(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 10 * BLOCK)
        assert fs.lookup("data") is inode
        with pytest.raises(FileNotFoundError):
            fs.lookup("missing")

    def test_duplicate_name_rejected(self):
        sim, drive, cache, fs = build_fs()
        fs.create_file("data", BLOCK)
        with pytest.raises(ValueError):
            fs.create_file("data", BLOCK)

    def test_read_returns_byte_count(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 10 * BLOCK)
        handle = fs.open(inode)

        def reader(sim):
            got = yield from fs.read(handle, 0, 4 * BLOCK)
            return got

        assert sim.run_until_complete(sim.spawn(reader(sim))) == \
            4 * BLOCK

    def test_read_clamps_at_eof(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 3 * BLOCK)
        handle = fs.open(inode)

        def reader(sim):
            got = yield from fs.read(handle, 2 * BLOCK, 10 * BLOCK)
            return got

        assert sim.run_until_complete(sim.spawn(reader(sim))) == BLOCK

    def test_read_past_eof_returns_zero(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", BLOCK)
        handle = fs.open(inode)

        def reader(sim):
            got = yield from fs.read(handle, 5 * BLOCK, BLOCK)
            return got

        assert sim.run_until_complete(sim.spawn(reader(sim))) == 0

    def test_sequential_reads_trigger_readahead(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 64 * BLOCK)
        handle = fs.open(inode)

        def reader(sim):
            for index in range(4):
                yield from fs.read(handle, index * BLOCK, BLOCK)

        sim.run_until_complete(sim.spawn(reader(sim)))
        # Blocks beyond the 4 demanded must have been prefetched.
        assert cache.stats.blocks_fetched > 4

    def test_nonsequential_reads_do_no_readahead(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 512 * BLOCK)
        handle = fs.open(inode)
        offsets = [100, 7, 450, 230, 12, 381]

        def reader(sim):
            for block in offsets:
                yield from fs.read(handle, block * BLOCK, BLOCK)

        sim.run_until_complete(sim.spawn(reader(sim)))
        assert cache.stats.blocks_fetched == len(offsets)

    def test_external_seqcount_read_path(self):
        """The NFS entry point: caller supplies the seqCount."""
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 64 * BLOCK)

        def reader(sim):
            got = yield from fs.read_with_seqcount(inode, 0, BLOCK, 127)
            return got

        assert sim.run_until_complete(sim.spawn(reader(sim))) == BLOCK
        max_ra = fs.params.max_readahead_blocks
        assert cache.stats.blocks_fetched >= 1 + max_ra - 1

    def test_readahead_stops_at_eof(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 4 * BLOCK)

        def reader(sim):
            yield from fs.read_with_seqcount(inode, 0, BLOCK, 127)

        sim.run_until_complete(sim.spawn(reader(sim)))
        assert cache.stats.blocks_fetched <= 4

    def test_bad_read_range_rejected(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 4 * BLOCK)

        def reader(sim):
            yield from fs.read_with_seqcount(inode, -1, BLOCK, 1)

        with pytest.raises(ValueError):
            sim.run_until_complete(sim.spawn(reader(sim)))

    def test_mismatched_block_size_rejected(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        iosched = DiskIoScheduler(sim, drive)
        cache = BufferCache(sim, iosched, capacity_bytes=8 << 20,
                            block_size=8192)
        allocator = SequentialAllocator(
            Partition("p1", first_lba=0, sectors=4_000_000))
        with pytest.raises(ValueError):
            FileSystem(sim, cache, allocator,
                       params=FfsParams(block_size=16384))

    def test_handle_tracks_stats(self):
        sim, drive, cache, fs = build_fs()
        inode = fs.create_file("data", 8 * BLOCK)
        handle = fs.open(inode)

        def reader(sim):
            yield from fs.read(handle, 0, 2 * BLOCK)

        sim.run_until_complete(sim.spawn(reader(sim)))
        assert handle.reads == 1
        assert handle.bytes_read == 2 * BLOCK
