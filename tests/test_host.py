"""Unit tests for the machine model and testbed builders."""

import random

import pytest

from repro.host import (DRIVE_SPECS, Machine, TestbedConfig,
                        build_local_testbed, build_nfs_testbed)
from repro.sim import Simulator


class TestMachine:
    def test_execute_charges_time(self):
        sim = Simulator()
        machine = Machine(sim, "m", rng=random.Random(0),
                          base_jitter=0.0)

        def worker(sim):
            yield from machine.execute(0.5)

        sim.run_until_complete(sim.spawn(worker(sim)))
        assert sim.now == pytest.approx(0.5)
        assert machine.cpu_time_consumed == pytest.approx(0.5)

    def test_busy_loops_dilate_execution(self):
        sim = Simulator()
        machine = Machine(sim, "m", rng=random.Random(0),
                          busy_processes=4, slowdown_per_hog=0.25,
                          base_jitter=0.0)

        def worker(sim):
            yield from machine.execute(1.0)

        sim.run_until_complete(sim.spawn(worker(sim)))
        assert sim.now == pytest.approx(2.0)

    def test_cpu_serialises_concurrent_work(self):
        sim = Simulator()
        machine = Machine(sim, "m", rng=random.Random(0),
                          base_jitter=0.0)
        finished = []

        def worker(sim, tag):
            yield from machine.execute(1.0)
            finished.append((tag, sim.now))

        sim.spawn(worker(sim, "a"))
        sim.spawn(worker(sim, "b"))
        sim.run()
        assert finished[1][1] == pytest.approx(2.0)

    def test_jitter_bounded_and_seeded(self):
        machine = Machine(Simulator(), "m", rng=random.Random(1),
                          busy_processes=2, jitter_per_hog=0.001,
                          base_jitter=0.0001)
        samples = [machine.scheduling_jitter() for _ in range(100)]
        assert all(0 <= sample <= 0.0021 for sample in samples)
        assert len(set(samples)) > 1

    def test_add_busy_loops(self):
        machine = Machine(Simulator(), "m")
        machine.add_busy_loops(3)
        assert machine.busy_processes == 3
        assert machine.dilation == pytest.approx(1.75)
        with pytest.raises(ValueError):
            machine.add_busy_loops(-1)

    def test_negative_work_rejected(self):
        machine = Machine(Simulator(), "m")
        with pytest.raises(ValueError):
            list(machine.execute(-1.0))


class TestTestbedConfig:
    def test_fs_label(self):
        assert TestbedConfig(drive="scsi", partition=4).fs_label() == \
            "scsi4"

    def test_with_seed_preserves_rest(self):
        config = TestbedConfig(drive="scsi", transport="tcp")
        reseeded = config.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.drive == "scsi"
        assert reseeded.transport == "tcp"

    def test_unknown_drive_rejected(self):
        with pytest.raises(ValueError):
            build_local_testbed(TestbedConfig(drive="floppy"))

    def test_bad_partition_rejected(self):
        with pytest.raises(ValueError):
            build_local_testbed(TestbedConfig(partition=5))

    def test_unknown_nfsheur_rejected(self):
        with pytest.raises(ValueError):
            build_nfs_testbed(TestbedConfig(nfsheur="gigantic"))


class TestBuilders:
    def test_local_testbed_components(self):
        testbed = build_local_testbed(TestbedConfig(drive="ide",
                                                    partition=2))
        assert testbed.drive.geometry.name == DRIVE_SPECS["ide"].name
        assert testbed.partition.name == "ide2"
        assert testbed.iosched.policy == "elevator"

    def test_partition_selects_lba_range(self):
        outer = build_local_testbed(TestbedConfig(partition=1))
        inner = build_local_testbed(TestbedConfig(partition=4))
        assert outer.partition.first_lba < inner.partition.first_lba

    def test_nfs_testbed_wires_everything(self):
        testbed = build_nfs_testbed(TestbedConfig(transport="udp"))
        assert testbed.mount.config.transport == "udp"
        assert testbed.server.nfsds.capacity == 8
        assert testbed.mount.nfsiods.capacity == 8

    def test_busy_loops_propagate(self):
        testbed = build_nfs_testbed(TestbedConfig(client_busy_loops=4))
        assert testbed.client_machine.busy_processes == 4
        assert testbed.machine.busy_processes == 0

    def test_tagged_queueing_override(self):
        no_tags = build_local_testbed(TestbedConfig(
            drive="scsi", tagged_queueing=False))
        assert no_tags.drive.queue_limit == 1

    def test_same_seed_same_layout(self):
        first = build_local_testbed(TestbedConfig(seed=5,
                                                  fragmentation=0.5))
        second = build_local_testbed(TestbedConfig(seed=5,
                                                   fragmentation=0.5))
        a = first.fs.create_file("f", 1 << 20)
        b = second.fs.create_file("f", 1 << 20)
        assert [(e.disk_block, e.nblocks) for e in a.extents] == \
            [(e.disk_block, e.nblocks) for e in b.extents]


class TestMultiClient:
    def test_default_is_single_client(self):
        testbed = build_nfs_testbed(TestbedConfig())
        assert len(testbed.mounts) == 1
        assert testbed.mount is testbed.mounts[0]

    def test_clients_get_own_machines_and_mounts(self):
        testbed = build_nfs_testbed(TestbedConfig(num_clients=3))
        assert len(testbed.mounts) == 3
        assert len(testbed.client_machines) == 3
        assert len({id(m) for m in testbed.client_machines}) == 3

    def test_mount_for_round_robin(self):
        testbed = build_nfs_testbed(TestbedConfig(num_clients=2))
        assert testbed.mount_for(0) is testbed.mounts[0]
        assert testbed.mount_for(1) is testbed.mounts[1]
        assert testbed.mount_for(2) is testbed.mounts[0]

    def test_zero_clients_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            build_nfs_testbed(TestbedConfig(num_clients=0))

    def test_all_clients_share_one_server(self):
        from repro.bench.runner import run_nfs_once
        result = run_nfs_once(TestbedConfig(num_clients=2), 4,
                              scale=1 / 64)
        # 256 MB / 64 = 4 MiB total, regardless of client count.
        assert result.total_bytes == 4 * (1 << 20)

    def test_rsize_configures_mount(self):
        testbed = build_nfs_testbed(TestbedConfig(rsize=16 * 1024))
        assert testbed.mount.config.read_size == 16 * 1024

    def test_rsize_reduces_rpc_count(self):
        from repro.bench.runner import run_nfs_once
        small = run_nfs_once(TestbedConfig(rsize=8 * 1024), 1,
                             scale=1 / 64)
        big = run_nfs_once(TestbedConfig(rsize=32 * 1024), 1,
                           scale=1 / 64)
        assert small.total_bytes == big.total_bytes
