"""Cross-cutting invariants: conservation, determinism, accounting.

These run a full NFS benchmark and check that the layers agree with
each other — every byte the reader saw was served by the server, every
disk command was serviced exactly once, the drive was never busy for
longer than the run, and the whole thing is bit-for-bit repeatable.
"""

import pytest

from repro.bench.fileset import files_for_readers
from repro.bench.readers import ReaderResult, sequential_reader
from repro.host import TestbedConfig, build_nfs_testbed

SCALE = 1 / 32


def run_instrumented(config, nreaders=4):
    testbed = build_nfs_testbed(config)
    specs = files_for_readers(nreaders, SCALE)
    for spec in specs:
        testbed.server.export_file(spec.name, spec.size)
    results = []
    for spec in specs:
        result = ReaderResult(spec.name)
        results.append(result)

        def make(spec=spec):
            def open_fn():
                nfile = yield from testbed.mount.open(spec.name)
                return nfile

            def read_fn(handle, offset, nbytes):
                got = yield from testbed.mount.read(handle, offset,
                                                    nbytes)
                return got

            return open_fn, read_fn

        open_fn, read_fn = make()
        testbed.sim.spawn(sequential_reader(
            testbed.sim, open_fn, read_fn, spec.size, result))
    testbed.sim.run()
    return testbed, results


class TestConservation:
    def test_bytes_flow_through_every_layer(self):
        testbed, results = run_instrumented(TestbedConfig())
        total = sum(result.bytes_read for result in results)
        expected = sum(
            spec.size for spec in files_for_readers(4, SCALE))
        assert total == expected
        # The server served at least what the clients consumed
        # (read-ahead may fetch more, never less).
        assert testbed.server.stats.bytes_served >= total
        # Everything served came off the disk exactly once (no reuse
        # in this workload) — drive reads >= file bytes.
        assert testbed.drive.stats.bytes_read >= total

    def test_every_disk_command_serviced_exactly_once(self):
        testbed, _results = run_instrumented(TestbedConfig())
        stats = testbed.drive.stats
        assert sorted(stats.arrival_order) == sorted(stats.service_order)
        assert len(set(stats.service_order)) == len(stats.service_order)

    def test_drive_busy_time_bounded_by_elapsed(self):
        testbed, results = run_instrumented(TestbedConfig())
        elapsed = max(result.finish_time for result in results)
        assert 0 < testbed.drive.stats.busy_time <= elapsed + 1e-9

    def test_cpu_time_bounded_by_elapsed(self):
        testbed, results = run_instrumented(TestbedConfig())
        elapsed = max(result.finish_time for result in results)
        assert testbed.machine.cpu_time_consumed <= elapsed + 1e-9
        assert testbed.client_machine.cpu_time_consumed <= elapsed + 1e-9

    def test_nfsiods_all_returned(self):
        testbed, _results = run_instrumented(TestbedConfig())
        assert testbed.mount.nfsiods.in_use == 0
        assert testbed.server.nfsds.in_use == 0

    def test_no_event_left_behind(self):
        testbed, _results = run_instrumented(TestbedConfig())
        # The simulation drained completely: re-running is a no-op.
        before = testbed.sim.now
        testbed.sim.run()
        assert testbed.sim.now == before


class TestDeterminism:
    @pytest.mark.parametrize("transport", ["udp", "tcp"])
    def test_identical_seeds_identical_timelines(self, transport):
        first, first_results = run_instrumented(
            TestbedConfig(transport=transport, seed=11))
        second, second_results = run_instrumented(
            TestbedConfig(transport=transport, seed=11))
        assert [r.finish_time for r in first_results] == \
            [r.finish_time for r in second_results]
        assert first.drive.stats.service_order == \
            second.drive.stats.service_order or \
            len(first.drive.stats.service_order) == \
            len(second.drive.stats.service_order)

    def test_busy_client_still_deterministic(self):
        first, first_results = run_instrumented(
            TestbedConfig(client_busy_loops=4, seed=5))
        second, second_results = run_instrumented(
            TestbedConfig(client_busy_loops=4, seed=5))
        assert [r.finish_time for r in first_results] == \
            [r.finish_time for r in second_results]

    def test_heuristic_choice_does_not_consume_randomness(self):
        """Swapping the heuristic must not perturb unrelated draws:
        the layout (allocator stream) is identical either way."""
        a = build_nfs_testbed(TestbedConfig(server_heuristic="default",
                                            seed=3))
        b = build_nfs_testbed(TestbedConfig(server_heuristic="cursor",
                                            seed=3))
        inode_a = a.fs.create_file("f", 1 << 20)
        inode_b = b.fs.create_file("f", 1 << 20)
        assert inode_a.first_disk_block() == inode_b.first_disk_block()
