"""Unit tests for the kernel buffer cache."""

import pytest

from repro.disk import WDC_WD200BB
from repro.kernel import BufferCache, DiskIoScheduler
from repro.sim import Simulator


def build(capacity_bytes=1 << 20):
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    iosched = DiskIoScheduler(sim, drive, policy="elevator")
    cache = BufferCache(sim, iosched, capacity_bytes=capacity_bytes)
    return sim, drive, cache


def read_sync(sim, cache, start, nblocks):
    def reader(sim):
        yield cache.read(start, nblocks)

    sim.run_until_complete(sim.spawn(reader(sim)))


class TestReadPath:
    def test_miss_then_hit(self):
        sim, drive, cache = build()
        read_sync(sim, cache, 0, 4)
        assert cache.stats.misses == 4
        read_sync(sim, cache, 0, 4)
        assert cache.stats.hits == 4
        assert 0 in cache

    def test_contiguous_misses_coalesce_into_one_disk_read(self):
        sim, drive, cache = build()
        read_sync(sim, cache, 10, 8)
        assert cache.stats.disk_reads_issued == 1
        assert drive.stats.requests == 1
        assert drive.stats.bytes_read == 8 * cache.block_size

    def test_hole_splits_disk_reads(self):
        sim, drive, cache = build()
        read_sync(sim, cache, 5, 1)
        cache.stats.disk_reads_issued = 0
        read_sync(sim, cache, 3, 5)  # blocks 3,4 miss; 5 hits; 6,7 miss
        assert cache.stats.disk_reads_issued == 2

    def test_concurrent_readers_share_inflight_fetch(self):
        sim, drive, cache = build()

        def reader(sim):
            yield cache.read(0, 4)

        first = sim.spawn(reader(sim))
        second = sim.spawn(reader(sim))
        sim.run()
        assert first.processed and second.processed
        assert cache.stats.disk_reads_issued == 1
        assert cache.stats.waits_on_inflight == 4

    def test_readahead_fire_and_forget(self):
        sim, drive, cache = build()
        cache.read(0, 8)  # not awaited
        sim.run()
        assert 7 in cache

    def test_zero_blocks_rejected(self):
        sim, drive, cache = build()
        with pytest.raises(ValueError):
            cache.read(0, 0)


class TestEvictionAndFlush:
    def test_capacity_enforced_lru(self):
        sim, drive, cache = build(capacity_bytes=8 * 8192)
        read_sync(sim, cache, 0, 8)
        read_sync(sim, cache, 100, 4)
        assert cache.cached_blocks <= 8
        assert 103 in cache          # newest survive
        assert 0 not in cache        # oldest evicted
        assert cache.stats.evictions == 4

    def test_flush_drops_ready_blocks(self):
        sim, drive, cache = build()
        read_sync(sim, cache, 0, 4)
        cache.flush()
        assert cache.cached_blocks == 0
        read_sync(sim, cache, 0, 4)
        assert cache.stats.misses == 8

    def test_flush_keeps_inflight(self):
        sim, drive, cache = build()
        cache.read(0, 2)
        cache.flush()  # the fetch is still in flight
        sim.run()
        assert 0 in cache and 1 in cache

    def test_too_small_capacity_rejected(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        iosched = DiskIoScheduler(sim, drive)
        with pytest.raises(ValueError):
            BufferCache(sim, iosched, capacity_bytes=100)
