"""Unit tests for the kernel disk queues (elevator, N-CSCAN, FCFS)."""

import pytest

from repro.disk import DiskRequest
from repro.kernel import (ElevatorQueue, FcfsQueue, NStepCscanQueue,
                          available_policies, make_bufq)


def request(lba):
    return DiskRequest(lba=lba, nsectors=16)


def drain(queue):
    order = []
    while True:
        item = queue.next()
        if item is None:
            return order
        order.append(item.lba)


class TestFcfs:
    def test_fifo_order(self):
        queue = FcfsQueue()
        for lba in (30, 10, 20):
            queue.insert(request(lba))
        assert drain(queue) == [30, 10, 20]

    def test_empty_returns_none(self):
        assert FcfsQueue().next() is None


class TestElevator:
    def test_services_ascending_within_sweep(self):
        queue = ElevatorQueue()
        for lba in (300, 100, 200):
            queue.insert(request(lba))
        assert drain(queue) == [100, 200, 300]

    def test_request_ahead_of_head_joins_current_sweep(self):
        """The §5.3 unfairness mechanism: a stream at the head keeps
        jumping the queue."""
        queue = ElevatorQueue()
        queue.insert(request(100))
        queue.insert(request(500))
        assert queue.next().lba == 100
        # The stream at 100 immediately asks for the adjacent block,
        # which lands *ahead* of the waiting request at 500.
        queue.insert(request(116))
        assert queue.next().lba == 116
        queue.insert(request(132))
        assert queue.next().lba == 132
        assert queue.next().lba == 500

    def test_request_behind_head_waits_for_next_sweep(self):
        queue = ElevatorQueue()
        queue.insert(request(200))
        assert queue.next().lba == 200
        queue.insert(request(100))   # behind the head
        queue.insert(request(300))   # ahead of the head
        assert drain(queue) == [300, 100]

    def test_wraps_to_lowest_after_sweep(self):
        queue = ElevatorQueue()
        queue.insert(request(500))
        assert queue.next().lba == 500
        queue.insert(request(10))
        queue.insert(request(20))
        assert drain(queue) == [10, 20]

    def test_len_counts_both_sweeps(self):
        queue = ElevatorQueue()
        queue.insert(request(100))
        queue.next()
        queue.insert(request(50))    # next sweep
        queue.insert(request(150))   # current sweep
        assert len(queue) == 2


class TestNStepCscan:
    def test_sweep_is_frozen(self):
        """Requests arriving during a sweep wait for the next one —
        the paper's fairness patch."""
        queue = NStepCscanQueue()
        queue.insert(request(100))
        queue.insert(request(300))
        assert queue.next().lba == 100
        # Arrives mid-sweep, sorts before 300, but must NOT jump in.
        queue.insert(request(200))
        assert queue.next().lba == 300
        assert queue.next().lba == 200

    def test_accumulated_batch_is_sorted(self):
        queue = NStepCscanQueue()
        queue.insert(request(100))
        assert queue.next().lba == 100
        for lba in (900, 300, 600):
            queue.insert(request(lba))
        assert drain(queue) == [300, 600, 900]

    def test_empty_returns_none(self):
        assert NStepCscanQueue().next() is None


class TestFactory:
    def test_make_by_name(self):
        assert make_bufq("elevator").name == "elevator"
        assert make_bufq("n-cscan").name == "n-cscan"
        assert make_bufq("fcfs").name == "fcfs"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            make_bufq("deadline")

    def test_available_policies(self):
        assert available_policies() == [
            "elevator", "fcfs", "n-cscan", "scan", "sstf"]


class TestSstf:
    def test_picks_nearest_to_head(self):
        queue = make_bufq("sstf")
        for lba in (100, 900, 120):
            queue.insert(request(lba))
        assert queue.next().lba == 100   # head starts at 0
        assert queue.next().lba == 120   # nearest to 100
        assert queue.next().lba == 900

    def test_starvation_is_possible(self):
        """SSTF's defining flaw: a stream near the head starves a
        distant request indefinitely."""
        queue = make_bufq("sstf")
        queue.insert(request(10_000))
        for lba in (10, 20, 30, 40):
            queue.insert(request(lba))
        served = [queue.next().lba for _ in range(4)]
        assert served == [10, 20, 30, 40]
        assert queue.next().lba == 10_000

    def test_empty_returns_none(self):
        assert make_bufq("sstf").next() is None


class TestScan:
    def test_sweeps_up_then_down(self):
        queue = make_bufq("scan")
        for lba in (300, 100, 200):
            queue.insert(request(lba))
        assert [queue.next().lba for _ in range(3)] == [100, 200, 300]
        # Head now at 300; new lower requests are served descending.
        for lba in (250, 150):
            queue.insert(request(lba))
        assert [queue.next().lba for _ in range(2)] == [250, 150]

    def test_direction_reverses_when_exhausted(self):
        queue = make_bufq("scan")
        queue.insert(request(500))
        assert queue.next().lba == 500
        queue.insert(request(100))  # nothing above 500: must turn
        assert queue.next().lba == 100

    def test_all_requests_served_once(self):
        queue = make_bufq("scan")
        lbas = [500, 100, 900, 300, 700]
        for lba in lbas:
            queue.insert(request(lba))
        served = [queue.next().lba for _ in range(len(lbas))]
        assert sorted(served) == sorted(lbas)
        assert queue.next() is None


class TestQueueProperties:
    """Property-style checks shared by every queue policy."""

    def test_everything_inserted_is_returned_exactly_once(self):
        import random as _random
        rng = _random.Random(11)
        for policy in available_policies():
            queue = make_bufq(policy)
            inserted = []
            drained = []
            for _round in range(5):
                for _n in range(rng.randrange(1, 20)):
                    item = request(rng.randrange(100_000))
                    inserted.append(item.id)
                    queue.insert(item)
                for _n in range(rng.randrange(1, 15)):
                    item = queue.next()
                    if item is None:
                        break
                    drained.append(item.id)
            while True:
                item = queue.next()
                if item is None:
                    break
                drained.append(item.id)
            assert sorted(drained) == sorted(inserted), policy

    def test_len_tracks_contents(self):
        for policy in available_policies():
            queue = make_bufq(policy)
            for lba in (5, 10, 15):
                queue.insert(request(lba))
            assert len(queue) == 3
            queue.next()
            assert len(queue) == 2
