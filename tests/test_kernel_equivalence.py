"""Golden bit-identity battery: calendar kernel ≡ heap kernel.

The calendar queue replaces the heapq scheduler for speed, never for
semantics: both kernels must dequeue events in exactly the same
``(when, seq)`` order, so every downstream artifact — testbed counters,
chaos fingerprints, replay summaries, campaign folds — must be
*byte-identical* across kernels.  This file is the proof battery for
that contract, run over the full testbed matrix:

    transport (udp, tcp) × mount (soft, hard)
        × fault schedule (none, fuzzed) × chaos seed

Each cell runs once per kernel and the canonical-JSON renderings are
compared as bytes.  A single differing byte anywhere means the calendar
queue broke the tie-break invariant (see DESIGN.md §12), and the
``--kernel heap`` escape hatch is the bisection tool.
"""

import hashlib
import json
from dataclasses import replace

import pytest

from repro.chaos import ChaosSchedule, ScheduleFuzzer, run_chaos
from repro.host.testbed import TestbedConfig
from repro.sim import KERNELS, use_kernel

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def canonical(jsonable) -> bytes:
    """The byte string we compare: canonical JSON, sorted keys."""
    return json.dumps(jsonable, sort_keys=True,
                      separators=(",", ":")).encode()


def run_matrix_cell(kernel: str, transport: str, soft: bool,
                    schedule: ChaosSchedule, seed: int) -> bytes:
    config = TestbedConfig(transport=transport, mount_soft=soft,
                           num_clients=2, seed=seed)
    with use_kernel(kernel):
        result = run_chaos(config, schedule)
    return canonical(result.to_jsonable())


# The full matrix: 2 transports × 2 mount semantics × 3 schedules
# (clean, and one fuzzed schedule per chaos seed).
SCHEDULES = [
    ("clean", ChaosSchedule()),
    ("fuzz-s0", ScheduleFuzzer(0).schedule(0)),
    ("fuzz-s7", ScheduleFuzzer(7).schedule(1)),
]
MATRIX = [
    (transport, soft, schedule_id, schedule, seed)
    for transport in ("udp", "tcp")
    for soft in (False, True)
    for (schedule_id, schedule), seed in zip(SCHEDULES, (7, 0, 7))
]
MATRIX_IDS = [f"{t}-{'soft' if s else 'hard'}-{sid}-seed{seed}"
              for t, s, sid, _, seed in MATRIX]


class TestTestbedMatrix:
    @pytest.mark.parametrize(
        "transport,soft,schedule_id,schedule,seed", MATRIX,
        ids=MATRIX_IDS)
    def test_chaos_artifacts_byte_identical(self, transport, soft,
                                            schedule_id, schedule,
                                            seed):
        outputs = {kernel: run_matrix_cell(kernel, transport, soft,
                                           schedule, seed)
                   for kernel in KERNELS}
        assert outputs["calendar"] == outputs["heap"]

    def test_matrix_cells_are_not_trivially_equal(self):
        # Sanity on the battery itself: distinct seeds produce
        # distinct artifacts, so byte-equality above is meaningful.
        a = run_matrix_cell("calendar", "udp", False, SCHEDULES[0][1], 7)
        b = run_matrix_cell("calendar", "udp", False, SCHEDULES[0][1], 0)
        assert a != b


class TestMetadataChaosIdentity:
    """The metadata chaos cell of the battery: intent-log commits,
    crash recovery with fsck, and the metadata oracles all ride the
    event kernel, so their full artifact — counters, oracle verdicts,
    fingerprint payload — must hold the same byte-identity contract."""

    @pytest.mark.parametrize("schedule_id,schedule", SCHEDULES,
                             ids=[sid for sid, _ in SCHEDULES])
    def test_metadata_artifacts_byte_identical(self, schedule_id,
                                               schedule):
        from repro.chaos import MetadataWorkload
        config = TestbedConfig(num_clients=2, seed=7)
        outputs = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                result = run_chaos(config, schedule,
                                   MetadataWorkload())
            outputs[kernel] = canonical(result.to_jsonable())
        assert outputs["calendar"] == outputs["heap"]

    def test_mixed_artifacts_byte_identical(self):
        from repro.chaos import MixedWorkload
        config = TestbedConfig(num_clients=2, seed=7)
        schedule = SCHEDULES[2][1]
        outputs = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                result = run_chaos(config, schedule, MixedWorkload())
            outputs[kernel] = canonical(result.to_jsonable())
        assert outputs["calendar"] == outputs["heap"]


class TestReplayIdentity:
    @pytest.fixture(scope="class")
    def traces(self):
        """One trace captured under each kernel."""
        from repro.replay import capture_nfs_run
        captured = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                captured[kernel] = capture_nfs_run(
                    TestbedConfig(num_clients=2), nreaders=2,
                    scale=0.125)
        return captured

    def test_capture_is_kernel_independent(self, traces):
        import dataclasses
        rendered = {
            kernel: canonical([dataclasses.asdict(record)
                               for record in trace.records])
            for kernel, trace in traces.items()}
        assert rendered["calendar"] == rendered["heap"]

    def test_replay_summary_byte_identical(self, traces):
        from repro.replay import replay_trace
        target = replace(TestbedConfig(), transport="tcp",
                         server_heuristic="cursor", nfsheur="improved")
        summaries = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                result = replay_trace(traces["calendar"], target,
                                      clients=2)
            summaries[kernel] = canonical(result.summary())
        assert summaries["calendar"] == summaries["heap"]
        # Pin the digest so a drift shows up as a diff in review, not
        # just an inequality at some future commit.
        digest = hashlib.sha256(summaries["calendar"]).hexdigest()
        assert summaries["calendar"] == summaries["heap"]
        assert len(digest) == 64


class TestNamespaceWorkloadIdentity:
    @pytest.mark.parametrize("pattern", ["stat", "list", "edit"])
    def test_namespace_summary_byte_identical(self, pattern):
        """The metadata workload family obeys the same contract: the
        full run summary (op counts, every mount and server counter)
        must not differ by a byte across kernels."""
        from repro.workloads import (NamespaceTreeSpec,
                                     NamespaceWorkload,
                                     run_namespace_once)
        tree = NamespaceTreeSpec(files=300, depth=1, fanout=4)
        workload = NamespaceWorkload(pattern=pattern, ops=40)
        config = TestbedConfig(num_clients=2, seed=7)
        summaries = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                result = run_namespace_once(config, tree, workload)
            summaries[kernel] = canonical(result.summary())
        assert summaries["calendar"] == summaries["heap"]


class TestCampaignFoldIdentity:
    def test_bench_campaign_fold_byte_identical(self, tmp_path):
        from repro.campaign import (CampaignOptions, fold_bench,
                                    fold_json, run_spec_campaign)
        from repro.campaign.drivers import bench_spec
        spec = bench_spec(2, readers=2, scale=0.03, seed=0)
        folds = {}
        records = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                # Workers fork, so they inherit the kernel default.
                outcome = run_spec_campaign(
                    spec, str(tmp_path / f"{kernel}.jsonl"),
                    options=CampaignOptions(workers=2,
                                            retry_backoff=0.01))
            record, _throughputs = fold_bench(spec, outcome)
            folds[kernel] = fold_json(outcome)
            records[kernel] = canonical(record)
        assert folds["calendar"] == folds["heap"]
        assert records["calendar"] == records["heap"]
