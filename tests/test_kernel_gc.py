"""Zero-allocation steady state: the calendar kernel reuses records.

The free-list in ``CalendarQueue`` exists so the hot loop (allocate
event → push → pop → resume) stops minting a fresh list per event.
These tests pin that down observably: after warm-up, a 100k-event churn
must not grow the interpreter's object population — per-op garbage is
zero, everything cycles through the pool.
"""

import gc

from repro.sim import Simulator


def churn_sim(population: int = 50, period: float = 1.0) -> Simulator:
    """A steady-state hold model: ``population`` perpetual timers."""
    sim = Simulator(kernel="calendar")

    def ticker(phase: int):
        # Deterministic varying delays, no RNG objects involved.
        while True:
            yield sim.timeout(period + (phase % 7) * 0.01)

    for phase in range(population):
        sim.spawn(ticker(phase))
    return sim


def settled_object_count() -> int:
    gc.collect()
    gc.collect()
    return len(gc.get_objects())


class TestZeroGarbageChurn:
    def test_no_object_growth_over_100k_ops(self):
        sim = churn_sim()
        # Warm-up: free-list and interpreter caches reach steady state.
        sim.run(until=200.0)  # ~10k events
        before = settled_object_count()
        # Measured window: >=100k events through the kernel.
        sim.run(until=2300.0)  # ~105k further events
        after = settled_object_count()
        # Zero per-op garbage: any growth here is O(1) test-harness
        # noise (gc internals), emphatically not O(ops).
        assert after - before <= 50, (
            f"object count grew by {after - before} over ~100k ops; "
            "the event free-list is leaking per-op allocations")

    def test_free_list_actually_recycles(self):
        # White-box confirmation that the zero-growth result above is
        # the free-list working, not gc heroics: a recycled record is
        # the *same list object* the next push hands back.
        from repro.sim.calendar import CalendarQueue
        queue = CalendarQueue()
        record = queue.push(1.0, "a")
        assert queue.pop() == (1.0, "a")
        queue.recycle(record)
        assert queue.push(2.0, "b") is record

    def test_pool_stays_bounded_at_steady_state(self):
        # The pool must not itself become the leak: its size is
        # bounded by the peak concurrent population, not by ops run.
        sim = churn_sim(population=20)
        sim.run(until=100.0)
        queue = sim._queue
        pool_after_warmup = len(queue._free)
        sim.run(until=500.0)
        assert len(queue._free) <= max(pool_after_warmup, 20) + 1
