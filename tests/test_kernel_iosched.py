"""Unit tests for the kernel dispatch layer."""

import pytest

from repro.disk import DiskRequest, IBM_DDYS_T36950N, WDC_WD200BB
from repro.kernel import DiskIoScheduler
from repro.sim import Simulator


def build(policy="elevator", tags=None, drive_spec=WDC_WD200BB):
    sim = Simulator()
    drive = drive_spec.build(sim, tagged_queueing=tags)
    return sim, drive, DiskIoScheduler(sim, drive, policy=policy)


class TestDispatch:
    def test_completion_event_fires(self):
        sim, drive, iosched = build()
        request = DiskRequest(lba=0, nsectors=16)
        done = iosched.submit(request)
        sim.run()
        assert done.processed
        assert request.completion > 0

    def test_one_outstanding_without_tags(self):
        sim, drive, iosched = build()
        requests = [DiskRequest(lba=i * 1000, nsectors=16)
                    for i in range(5)]
        for request in requests:
            iosched.submit(request)
        assert drive.outstanding <= 1
        sim.run()
        assert all(r.completion > 0 for r in requests)

    def test_policy_orders_dispatch_without_tags(self):
        sim, drive, iosched = build(policy="elevator",
                                    drive_spec=IBM_DDYS_T36950N,
                                    tags=False)
        lbas = [5000, 1000, 3000]
        for lba in lbas:
            iosched.submit(DiskRequest(lba=lba, nsectors=16))
        sim.run()
        # First dispatched before sorting could happen (pump is eager),
        # remaining two served in ascending order.
        order = drive.stats.service_order
        assert len(order) == 3

    def test_tags_pass_through_up_to_depth(self):
        sim, drive, iosched = build(drive_spec=IBM_DDYS_T36950N,
                                    tags=True)
        for i in range(100):
            iosched.submit(DiskRequest(lba=i * 64, nsectors=16))
        # TCQ depth is 64: the drive may hold up to that many; the rest
        # sit in the kernel queue.
        assert drive.outstanding <= drive.tcq_depth
        assert iosched.queued >= 100 - drive.tcq_depth - 1
        sim.run()

    def test_dispatched_counter(self):
        sim, drive, iosched = build()
        for i in range(4):
            iosched.submit(DiskRequest(lba=i * 64, nsectors=16))
        sim.run()
        assert iosched.dispatched == 4


class TestPolicySwitch:
    def test_switch_when_idle(self):
        sim, drive, iosched = build(policy="elevator")
        iosched.set_policy("n-cscan")
        assert iosched.policy == "n-cscan"

    def test_switch_with_queued_requests_rejected(self):
        sim, drive, iosched = build(policy="elevator", tags=None)
        # Fill beyond the drive's queue limit so something stays queued.
        for i in range(10):
            iosched.submit(DiskRequest(lba=i * 640_000, nsectors=16))
        if iosched.queued:
            with pytest.raises(RuntimeError):
                iosched.set_policy("n-cscan")
        sim.run()
