"""Crash consistency of namespace metadata: the intent log end to end.

Hand-built scenarios (no fuzzing) pinning each obligation of the
metadata journal individually: an acknowledged CREATE/MKDIR/RENAME
survives a crash, an unacknowledged one is rolled back cleanly, the
fsck scanner finds nothing to heal after recovery, the ack-before-
intent bug hook loses exactly what it should, and a retried
non-idempotent op that straddles a reboot is answered from the durable
log instead of silently re-executing (the stable-storage replay cache
the RAM dupreq cache cannot be).
"""

import pytest

from repro.faults import FaultSpec, ServerFaults
from repro.host.testbed import TestbedConfig, build_nfs_testbed
from repro.nfs.errors import NfsNoEntryError
from repro.nfs.protocol import (CreateRequest, RemoveRequest,
                                RenameRequest)

CRASH_AT = 0.3
RESTART = 1.0


def _crash_config(**kwargs) -> TestbedConfig:
    kwargs.setdefault("seed", 5)
    return TestbedConfig(
        faults=FaultSpec(server=ServerFaults(
            crash_times=(CRASH_AT,), restart_delay=RESTART)),
        **kwargs)


def _run(testbed, scenario):
    out = {}
    process = testbed.sim.spawn(scenario(testbed, out), name="scenario")
    testbed.sim.run()
    if process.error is not None:
        raise process.error
    assert process.finished
    return out


def _call(server, request, out, key, rpc_key=None):
    """Drive server.handle directly, capturing the reply (or None)."""
    result = yield from server.handle(request, rpc_key=rpc_key)
    out[key] = result[0] if result is not None else None
    return None


class TestJournalDurability:
    def test_acked_create_survives_crash(self):
        testbed = build_nfs_testbed(_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("seed", bs)

        def scenario(tb, out):
            yield from tb.mount.create("newfile", 2 * bs)
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["attrs"] = yield from tb.mount.stat("newfile")

        out = _run(testbed, scenario)
        assert out["attrs"].ftype == "reg"
        stats = testbed.server.stats
        assert stats.meta_intents == 1
        assert stats.meta_commits == 1
        assert stats.meta_undone == 0
        report = testbed.server.recovery_reports[0]
        assert report.consistent
        assert report.orphans_reclaimed == 0
        assert report.dangling_repaired == 0

    def test_acked_rename_survives_crash_atomically(self):
        testbed = build_nfs_testbed(_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/a", bs)

        def scenario(tb, out):
            yield from tb.mount.rename("d/a", "d/b")
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["dst"] = yield from tb.mount.stat("d/b")
            try:
                yield from tb.mount.stat("d/a")
                out["src_present"] = True
            except NfsNoEntryError:
                out["src_present"] = False

        out = _run(testbed, scenario)
        assert out["dst"].ftype == "reg"
        assert out["src_present"] is False
        assert testbed.server.recovery_reports[0].consistent

    def test_journal_off_reverts_to_implicit_durability(self):
        """Without the journal nothing is undone — the pre-journal
        semantics where namespace RAM was implicitly durable."""
        testbed = build_nfs_testbed(
            _crash_config(metadata_journal=False))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("seed", bs)
        assert testbed.server.metajournal is None

        def scenario(tb, out):
            yield from tb.mount.create("newfile", bs)
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["attrs"] = yield from tb.mount.stat("newfile")

        out = _run(testbed, scenario)
        assert out["attrs"].ftype == "reg"
        assert testbed.server.stats.meta_intents == 0
        assert testbed.server.recovery_reports == []


class TestAckBeforeIntentBug:
    def test_acked_create_lost(self):
        testbed = build_nfs_testbed(
            _crash_config(meta_ack_before_intent=True))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("seed", bs)

        def scenario(tb, out):
            yield from tb.mount.create("newfile", bs)
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            try:
                yield from tb.mount.stat("newfile")
                out["present"] = True
            except NfsNoEntryError:
                out["present"] = False

        out = _run(testbed, scenario)
        assert out["present"] is False
        stats = testbed.server.stats
        assert stats.meta_undone == 1
        assert stats.meta_commits == 0
        # The rollback itself is clean: fsck found nothing dangling.
        assert testbed.server.recovery_reports[0].consistent

    def test_undo_is_reverse_ordered_and_complete(self):
        """A create + rename chain on the same name unwinds cleanly."""
        testbed = build_nfs_testbed(
            _crash_config(meta_ack_before_intent=True))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/seed", bs)

        def scenario(tb, out):
            yield from tb.mount.create("d/x", bs)
            yield from tb.mount.rename("d/x", "d/y")
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["names"] = sorted((yield from tb.mount.readdir("d")))

        out = _run(testbed, scenario)
        assert out["names"] == ["seed"]
        assert testbed.server.stats.meta_undone == 2
        assert testbed.server.recovery_reports[0].consistent


class TestCrossBootReplay:
    """Satellite: the dupreq cache dies with the boot; the intent log
    does not.  A retried REMOVE whose original was acknowledged just
    before the crash must be answered from the recovered journal."""

    def _setup(self, **kwargs):
        config = TestbedConfig(seed=5, **kwargs)
        testbed = build_nfs_testbed(config)
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/victim", bs)
        return testbed

    def _remove_request(self, testbed):
        return RemoveRequest(dir=testbed.server.fh_of("d"),
                             name="victim")

    def test_journal_replays_retried_remove_across_reboot(self):
        testbed = self._setup()
        server = testbed.server
        request = self._remove_request(testbed)
        out = {}

        def scenario(tb, _out):
            yield from _call(server, request, out, "first",
                             rpc_key=("c0", 7))
            server._crash()
            yield from _call(server, request, out, "retry",
                             rpc_key=("c0", 7))

        _run(testbed, scenario)
        assert out["first"].status == "ok"
        # The retry is served the recorded reply — not re-executed.
        assert out["retry"].status == "ok"
        assert server.stats.meta_replays == 1
        assert server.stats.removes == 1
        assert server.stats.cross_boot_meta_reexecutions == 0

    def test_without_journal_retry_reexecutes_as_noent(self):
        """The trap the stable-storage cache closes: with only the RAM
        dupreq cache, the retried REMOVE re-executes after the reboot
        and answers noent for an op the server already acknowledged."""
        testbed = self._setup(metadata_journal=False)
        server = testbed.server
        request = self._remove_request(testbed)
        out = {}

        def scenario(tb, _out):
            yield from _call(server, request, out, "first",
                             rpc_key=("c0", 7))
            server._crash()
            yield from _call(server, request, out, "retry",
                             rpc_key=("c0", 7))

        _run(testbed, scenario)
        assert out["first"].status == "ok"
        assert out["retry"].status == "noent"
        assert server.stats.cross_boot_meta_reexecutions == 1

    def test_replay_window_is_bounded_by_journal_capacity(self):
        from repro.ffs.metajournal import RECORDS_PER_BLOCK
        testbed = self._setup()
        journal = testbed.server.metajournal
        expected = (testbed.server.config.meta_journal_blocks
                    * RECORDS_PER_BLOCK)
        assert journal.capacity == expected


class TestDeadEpochRequests:
    """A metadata op suspended across a reboot (nfsd stall bracketing
    a crash) must not execute when its handler resumes: the boot that
    accepted it is gone, and executing anyway would mutate the
    namespace durably while the epoch guard drops the reply — a silent
    mutation whose retransmission then re-executes and answers noent.
    Found by the 200-schedule metadata campaign (seed 0, schedule 119)
    and pinned here as a hand-built scenario."""

    def _stall_crash_config(self, **kwargs):
        kwargs.setdefault("seed", 5)
        return TestbedConfig(
            faults=FaultSpec(server=ServerFaults(
                stall_times=(0.2,), stall_duration=1.0,
                crash_times=(0.5,), restart_delay=0.1)),
            **kwargs)

    def test_stalled_rename_is_dropped_not_silently_executed(self):
        testbed = build_nfs_testbed(self._stall_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/a", bs)

        def scenario(tb, out):
            # Arrives during the stall; the crash at 0.5 lands while
            # the handler sleeps.  The retransmission must execute the
            # rename exactly once, post-reboot.
            yield tb.sim.timeout(0.25)
            yield from tb.mount.rename("d/a", "d/b")
            out["dst"] = yield from tb.mount.stat("d/b")

        out = _run(testbed, scenario)
        assert out["dst"].ftype == "reg"
        stats = testbed.server.stats
        assert stats.renames == 1
        assert stats.meta_intents == stats.meta_commits == 1
        assert stats.cross_boot_meta_reexecutions == 0


class TestJournalInternals:
    def test_commit_is_prefix_durable(self):
        """Committing record N marks every earlier record durable —
        group commit, so durability is always a prefix of LSN order."""
        testbed = build_nfs_testbed(TestbedConfig(seed=5))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/seed", bs)
        server = testbed.server
        journal = server.metajournal

        def scenario(tb, out):
            yield from tb.mount.create("d/a", bs)
            yield from tb.mount.create("d/b", bs)

        _run(testbed, scenario)
        assert [r.durable for r in journal._records] == [True, True]
        assert journal._records[0].lsn < journal._records[1].lsn

    def test_aborted_intent_is_inert_across_crash(self):
        """A rename whose precondition fails after the intent was
        appended stays !applied; crash recovery must skip it."""
        testbed = build_nfs_testbed(TestbedConfig(seed=5))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("d/src", bs)
        testbed.server.export_file("d/sub/seed", bs)
        server = testbed.server
        request = RenameRequest(
            from_dir=server.fh_of("d"), from_name="src",
            to_dir=server.fh_of("d"), to_name="sub")
        out = {}

        def scenario(tb, _out):
            yield from _call(server, request, out, "reply",
                             rpc_key=("c0", 3))
            server._crash()

        _run(testbed, scenario)
        assert out["reply"].status == "isdir"
        assert server.stats.meta_undone == 0
        assert server.recovery_reports[0].consistent
