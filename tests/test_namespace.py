"""The NFSv3 namespace subsystem: RFC 1813 edges, workloads, detectors.

Four batteries:

* RFC 1813 edge semantics — RENAME atomically replacing a target,
  REMOVE of a file another handle still holds (reads go stale, not
  time-travel), READDIR cookie verifiers after mid-listing mutation,
  and dupreq idempotency of retried mutations over a lossy transport.
* The ``repro.workloads.namespace`` family — every pattern end to end,
  deterministic summaries, and the bench/campaign plumbing.
* Capture → replay of metadata-heavy workloads, including the format
  v1/v2 negotiation (old captures keep their byte-identical v1 form).
* The three metadata trap detectors firing on real misconfigured runs
  and staying silent on clean ones.
"""

import dataclasses
import json

import pytest

from repro.host import TestbedConfig, build_nfs_testbed
from repro.nfs import (NfsNoEntryError, NfsNotEmptyError, NfsStaleError)
from repro.workloads import (NamespaceTreeSpec, NamespaceWorkload,
                             PATTERNS, run_namespace_once)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def run_ops(testbed, gen):
    """Drive one generator to completion on the testbed's simulator."""
    process = testbed.sim.spawn(gen)
    return testbed.sim.run_until_complete(process)


def canonical(jsonable) -> bytes:
    return json.dumps(jsonable, sort_keys=True,
                      separators=(",", ":")).encode()


# ---------------------------------------------------------------------------
# Tree specs
# ---------------------------------------------------------------------------

class TestTreeSpec:
    def test_flat_tree_is_one_directory(self):
        tree = NamespaceTreeSpec(files=100, depth=0)
        assert tree.leaf_dirs == 1
        assert tree.dir_paths() == ["ns"]
        paths = list(tree.paths())
        assert len(paths) == 100
        assert paths[0] == ("ns/f000000", tree.file_size)

    def test_nested_tree_spreads_round_robin(self):
        tree = NamespaceTreeSpec(files=64, depth=2, fanout=4)
        assert tree.leaf_dirs == 16
        dirs = tree.dir_paths()
        assert len(dirs) == 16
        assert dirs[0] == "ns/d00/d00"
        assert dirs[-1] == "ns/d03/d03"
        by_dir = {}
        for path, _size in tree.paths():
            by_dir.setdefault(path.rsplit("/", 1)[0], 0)
            by_dir[path.rsplit("/", 1)[0]] += 1
        assert set(by_dir.values()) == {4}

    def test_validation(self):
        with pytest.raises(ValueError):
            NamespaceTreeSpec(files=0)
        with pytest.raises(ValueError):
            NamespaceTreeSpec(depth=1, fanout=1)
        with pytest.raises(ValueError):
            NamespaceWorkload(pattern="scan")
        with pytest.raises(ValueError):
            NamespaceWorkload(ops=0)


# ---------------------------------------------------------------------------
# RFC 1813 edges
# ---------------------------------------------------------------------------

class TestRenameSemantics:
    def test_rename_replaces_existing_target(self):
        testbed = build_nfs_testbed(TestbedConfig())
        mount = testbed.mount

        def scenario():
            yield from mount.mkdir("d")
            yield from mount.create("d/src", size=2048)
            yield from mount.create("d/dst", size=8192)
            yield from mount.rename("d/src", "d/dst")
            return (yield from mount.stat("d/dst"))

        attrs = run_ops(testbed, scenario())
        # The target was atomically replaced by the source.
        assert attrs.size == 2048
        assert testbed.server.stats.renames == 1
        with pytest.raises(NfsNoEntryError):
            run_ops(testbed, mount.stat("d/src"))

    def test_rename_over_nonempty_directory_refuses(self):
        testbed = build_nfs_testbed(TestbedConfig())
        mount = testbed.mount

        def setup():
            yield from mount.mkdir("a")
            yield from mount.mkdir("b")
            yield from mount.create("b/occupant", size=1024)

        run_ops(testbed, setup())
        with pytest.raises(NfsNotEmptyError):
            run_ops(testbed, mount.rename("a", "b"))
        # Nothing moved.
        assert run_ops(testbed, mount.readdir("b")) == ["occupant"]
        assert testbed.server.stats.renames == 0

    def test_replaced_target_handle_goes_stale(self):
        testbed = build_nfs_testbed(TestbedConfig())
        mount = testbed.mount

        def setup():
            yield from mount.create("src", size=1024)
            dst = yield from mount.create("dst", size=1024)
            yield from mount.rename("src", "dst")
            return dst

        dst = run_ops(testbed, setup())
        # Drop cached blocks: the read must reach the server, and the
        # *replaced* node's handle is dead there — the answer is stale,
        # not the new content.
        testbed.flush_caches()
        with pytest.raises(NfsStaleError):
            run_ops(testbed, mount.read(dst, 0, 512))
        assert testbed.server.stats.stale_handles >= 1


class TestRemoveSemantics:
    def test_remove_of_open_file_stales_reads(self):
        testbed = build_nfs_testbed(TestbedConfig())
        mount = testbed.mount

        def scenario():
            yield from mount.create("victim", size=4096)
            nfile = yield from mount.open("victim")
            yield from mount.remove("victim")
            yield from mount.read(nfile, 0, 1024)

        with pytest.raises(NfsStaleError):
            run_ops(testbed, scenario())
        assert testbed.server.stats.removes == 1
        assert testbed.server.stats.stale_handles >= 1

    def test_remove_absent_raises_noent(self):
        testbed = build_nfs_testbed(TestbedConfig())
        with pytest.raises(NfsNoEntryError):
            run_ops(testbed, testbed.mount.remove("never-existed"))


class TestReaddirCookies:
    def test_mutation_mid_listing_restarts_with_bad_cookie(self):
        # A small per-RPC byte budget forces many chunks per listing,
        # leaving a window to mutate the directory mid-listing.
        testbed = build_nfs_testbed(
            TestbedConfig(readdir_count=512, acdirmax=0.0, acdirmin=0.0))
        mount = testbed.mount

        def setup():
            yield from mount.mkdir("big")
            for index in range(120):
                yield from mount.create(f"big/f{index:03d}", size=1024)

        run_ops(testbed, setup())
        baseline_rpcs = mount.stats.readdir_rpcs

        def lister(sim):
            return (yield from mount.readdir("big"))

        def mutator(sim):
            # Wait until the listing is demonstrably mid-flight, then
            # mutate the directory (bumping its cookie verifier).
            while mount.stats.readdir_rpcs < baseline_rpcs + 2:
                yield sim.timeout(1e-4)
            yield from mount.create("big/intruder", size=1024)

        lister_proc = testbed.sim.spawn(lister(testbed.sim))
        testbed.sim.spawn(mutator(testbed.sim))
        names = testbed.sim.run_until_complete(lister_proc)
        testbed.sim.run()
        assert testbed.server.stats.bad_cookies >= 1
        assert mount.stats.readdir_restarts >= 1
        # The restarted listing is complete and includes the intruder.
        assert len(names) == 121
        assert "intruder" in names

    def test_unmutated_listing_never_restarts(self):
        testbed = build_nfs_testbed(TestbedConfig(readdir_count=512))
        mount = testbed.mount

        def scenario():
            yield from mount.mkdir("big")
            for index in range(60):
                yield from mount.create(f"big/f{index:03d}", size=1024)
            return (yield from mount.readdir("big"))

        names = run_ops(testbed, scenario())
        assert len(names) == 60
        assert mount.stats.readdir_restarts == 0
        assert testbed.server.stats.bad_cookies == 0
        # Chunking happened (the budget is far below 60 entries).
        assert mount.stats.readdir_rpcs > 1


class TestDupreqIdempotency:
    def test_retried_mutations_execute_once_over_lossy_udp(self):
        # 25% datagram loss makes RPC retransmission certain across 40
        # mutations; the dupreq cache must answer every retry from the
        # cached reply, so each CREATE/RENAME/REMOVE executes exactly
        # once and the client sees no spurious NOENT/EXIST.
        testbed = build_nfs_testbed(
            TestbedConfig(transport="udp", loss_rate=0.25, seed=11))
        mount = testbed.mount

        def scenario():
            yield from mount.mkdir("work")
            for index in range(40):
                yield from mount.create(f"work/t{index:02d}", size=1024)
                yield from mount.rename(f"work/t{index:02d}",
                                        f"work/f{index:02d}")
            for index in range(40):
                yield from mount.remove(f"work/f{index:02d}")
            return (yield from mount.readdir("work"))

        names = run_ops(testbed, scenario())
        assert names == []
        # The run actually exercised retries, and retries were served
        # from the dupreq cache rather than re-executed.
        assert sum(c.retransmitted for c in testbed.rpc_clients) > 0
        assert sum(s.dupreq_hits + s.dupreq_in_progress_drops
                   for s in testbed.rpc_servers) > 0
        stats = testbed.server.stats
        assert stats.creates == 40
        assert stats.renames == 40
        assert stats.removes == 40


# ---------------------------------------------------------------------------
# Workload family
# ---------------------------------------------------------------------------

class TestNamespaceWorkload:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_every_pattern_runs(self, pattern):
        tree = NamespaceTreeSpec(files=200, depth=1, fanout=4)
        result = run_namespace_once(
            TestbedConfig(num_clients=2, seed=3), tree,
            NamespaceWorkload(pattern=pattern, ops=24))
        assert result.ops + result.errors == 24
        assert result.ops > 0
        assert result.ops_per_s > 0

    def test_summary_is_deterministic(self):
        tree = NamespaceTreeSpec(files=300, depth=0)
        workload = NamespaceWorkload(pattern="stat", ops=50)
        config = TestbedConfig(num_clients=2, seed=5)
        a = run_namespace_once(config, tree, workload).summary()
        b = run_namespace_once(config, tree, workload).summary()
        assert canonical(a) == canonical(b)

    def test_distinct_seeds_distinct_interleavings(self):
        tree = NamespaceTreeSpec(files=300, depth=0)
        workload = NamespaceWorkload(pattern="stat", ops=50)
        a = run_namespace_once(TestbedConfig(num_clients=2, seed=5),
                               tree, workload).summary()
        b = run_namespace_once(TestbedConfig(num_clients=2, seed=6),
                               tree, workload).summary()
        assert canonical(a) != canonical(b)

    def test_stat_workload_counts_walks_and_attr_traffic(self):
        result = run_namespace_once(
            TestbedConfig(seed=1), NamespaceTreeSpec(files=200),
            NamespaceWorkload(pattern="stat", ops=40))
        assert result.mount_stats["path_walks"] >= 40
        assert result.mount_stats["attr_hits"] \
            + result.mount_stats["attr_misses"] >= 40

    def test_bench_collect_metric_over_namespace(self):
        import functools
        from repro.bench.runner import collect_metric
        tree = NamespaceTreeSpec(files=150)
        workload = NamespaceWorkload(pattern="stat", ops=20)
        run_once = functools.partial(run_namespace_once, tree=tree,
                                     workload=workload)
        values = collect_metric(run_once, TestbedConfig(seed=2), 2,
                                metric="ops_per_s")
        assert len(values) == 2
        assert all(v > 0 for v in values)

    def test_campaign_bench_cell_routes_namespace(self):
        from repro.campaign.cells import CampaignSpec, run_bench_cell
        spec = CampaignSpec(kind="bench", cells=1, params={
            "workload": "namespace", "pattern": "list", "files": 150,
            "tree_depth": 1, "fanout": 4, "ops": 15, "seed": 4})
        result = run_bench_cell(spec, 0)
        assert result["ops_per_s"] > 0
        assert result["errors"] == 0

    def test_campaign_fold_uses_ops_per_s(self, tmp_path):
        from repro.campaign import CampaignOptions
        from repro.campaign.drivers import (bench_spec,
                                            run_bench_campaign)
        spec = bench_spec(2, workload="namespace", pattern="stat",
                          files=120, ops=12, seed=0)
        record, outcome = run_bench_campaign(
            spec, str(tmp_path / "journal.jsonl"),
            options=CampaignOptions(workers=2, retry_backoff=0.01))
        assert outcome.complete
        assert record["workload"] == "namespace"
        assert len(record["ops_per_s"]) == 2
        assert record["mean_ops_s"] > 0


# ---------------------------------------------------------------------------
# Capture -> replay, format v1/v2
# ---------------------------------------------------------------------------

class TestNamespaceCaptureReplay:
    @pytest.fixture(scope="class")
    def captured(self):
        tree = NamespaceTreeSpec(files=150, depth=1, fanout=4)
        workload = NamespaceWorkload(pattern="edit", ops=30)
        result = run_namespace_once(
            TestbedConfig(num_clients=2, seed=9, capture_trace=True),
            tree, workload)
        assert result.trace is not None
        return result.trace

    def test_capture_contains_namespace_ops(self, captured):
        ops = {record.op for record in captured.records}
        assert {"stat", "create", "rename"} <= ops

    def test_dumps_loads_round_trip_byte_identical(self, captured):
        from repro.replay import dumps_trace, loads_trace
        text = dumps_trace(captured)
        assert dumps_trace(loads_trace(text)) == text

    def test_namespace_trace_is_version_2(self, captured):
        from repro.replay import dumps_trace
        header = json.loads(dumps_trace(captured).splitlines()[0])
        assert header["version"] == 2

    def test_closed_loop_replay_drives_namespace_ops(self, captured):
        from repro.replay.engine import replay_trace
        target = TestbedConfig(transport="tcp", seed=1)
        result = replay_trace(captured, target)
        summary = result.summary()
        assert summary["ops_completed"] > 0
        # Replay tolerates the workload's own close-to-open races but
        # must not fail wholesale.
        assert summary["errors"] <= summary["offered_ops"] * 0.2

    def test_open_loop_replay_drives_namespace_ops(self, captured):
        from repro.replay.engine import OPEN_LOOP, replay_trace
        result = replay_trace(captured, TestbedConfig(seed=1),
                              mode=OPEN_LOOP, time_scale=4.0)
        assert result.summary()["ops_completed"] > 0


class TestFormatVersions:
    def _v1_trace(self):
        from repro.replay import TraceFile, TraceHeader
        from repro.trace.records import TraceRecord
        header = TraceHeader(block_size=8192,
                             fileset=(("data", 65536),), seed=0,
                             clients=1)
        records = [TraceRecord(time=0.1, fh=1, offset=0, count=8192,
                               client_seq=0, op="read", path="data")]
        return TraceFile(header=header, records=records)

    def test_v1_vocabulary_stays_version_1(self):
        from repro.replay import dumps_trace
        text = dumps_trace(self._v1_trace())
        assert json.loads(text.splitlines()[0])["version"] == 1
        assert "p2" not in text

    def test_rename_record_promotes_to_v2_with_p2(self):
        from repro.replay import TraceFile, dumps_trace, loads_trace
        from repro.trace.records import TraceRecord
        base = self._v1_trace()
        records = base.records + [
            TraceRecord(time=0.2, fh=2, offset=0, count=0,
                        client_seq=1, op="rename", path="data",
                        path2="data2")]
        text = dumps_trace(TraceFile(header=base.header,
                                     records=records))
        lines = text.splitlines()
        assert json.loads(lines[0])["version"] == 2
        assert json.loads(lines[-1])["p2"] == "data2"
        loaded = loads_trace(text)
        assert loaded.records[-1].path2 == "data2"

    def test_unknown_version_rejected(self):
        from repro.replay import TraceFormatError, dumps_trace, \
            loads_trace
        text = dumps_trace(self._v1_trace())
        lines = text.splitlines()
        header = json.loads(lines[0])
        header["version"] = 3
        with pytest.raises(TraceFormatError):
            loads_trace("\n".join([json.dumps(header)] + lines[1:])
                        + "\n")

    def test_multiplex_preserves_path2(self):
        from repro.replay import TraceFile, dumps_trace
        from repro.replay.scale import multiplex_trace
        from repro.trace.records import TraceRecord
        base = self._v1_trace()
        trace = TraceFile(header=base.header, records=base.records + [
            TraceRecord(time=0.2, fh=2, offset=0, count=0,
                        client_seq=1, op="rename", path="data",
                        path2="data2")])
        wide = multiplex_trace(trace, 3, seed=0)
        renames = [r for r in wide.records if r.op == "rename"]
        assert renames
        assert all(r.path2 for r in renames)


# ---------------------------------------------------------------------------
# Detectors on real runs
# ---------------------------------------------------------------------------

def _findings(result, name):
    from repro.diagnose import DiagnosisInputs, run_detectors
    inputs = DiagnosisInputs(snapshots=[result.metrics])
    return [f for f in run_detectors(inputs) if f.detector == name]


class TestMetadataDetectorsOnRealRuns:
    def test_attrcache_staleness_fires_on_default_acregmax(self):
        # Two clients editing over each other under the default 60 s
        # attribute window: a material fraction of cache answers are
        # stale, and the detector must say so, citing the mount knob.
        result = run_namespace_once(
            TestbedConfig(metrics=True, num_clients=2, seed=0),
            NamespaceTreeSpec(files=400, depth=1, fanout=4),
            NamespaceWorkload(pattern="edit", ops=80))
        findings = _findings(result, "attrcache")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.evidence["acregmax_s"] == 60.0
        assert finding.evidence["stale_rate"] >= 0.05
        assert "§8" in finding.paper_section

    def test_attrcache_silent_when_cache_disabled(self):
        # Both attribute windows at 0: every answer asks the server —
        # nothing can be stale.  (acregmax=0 alone still leaves the
        # *directory* cache serving stale directory attributes.)
        result = run_namespace_once(
            TestbedConfig(metrics=True, num_clients=2, seed=0,
                          acregmax=0.0, acregmin=0.0,
                          acdirmax=0.0, acdirmin=0.0),
            NamespaceTreeSpec(files=400, depth=1, fanout=4),
            NamespaceWorkload(pattern="edit", ops=80))
        assert _findings(result, "attrcache") == []

    def test_lookup_storm_fires_with_name_cache_off(self):
        result = run_namespace_once(
            TestbedConfig(metrics=True, seed=0, acdirmax=0.0,
                          acdirmin=0.0, acregmax=0.0, acregmin=0.0),
            NamespaceTreeSpec(files=200, depth=2, fanout=4),
            NamespaceWorkload(pattern="stat", ops=80))
        findings = _findings(result, "lookupstorm")
        assert len(findings) == 1
        assert findings[0].evidence["rpcs_per_walk"] >= 2.0

    def test_lookup_storm_silent_with_warm_name_cache(self):
        result = run_namespace_once(
            TestbedConfig(metrics=True, seed=0),
            NamespaceTreeSpec(files=200, depth=2, fanout=4),
            NamespaceWorkload(pattern="stat", ops=80))
        assert _findings(result, "lookupstorm") == []

    def test_readdir_chunking_fires_on_flat_tree_small_replies(self):
        result = run_namespace_once(
            TestbedConfig(metrics=True, seed=0, readdir_count=1024),
            NamespaceTreeSpec(files=1500, depth=0),
            NamespaceWorkload(pattern="list", ops=15))
        findings = _findings(result, "readdir")
        assert len(findings) == 1
        assert findings[0].evidence["rpcs_per_listing"] >= 8.0

    def test_readdir_silent_on_small_directories(self):
        result = run_namespace_once(
            TestbedConfig(metrics=True, seed=0),
            NamespaceTreeSpec(files=64, depth=1, fanout=8),
            NamespaceWorkload(pattern="list", ops=15))
        assert _findings(result, "readdir") == []


class TestExportedFilesEnumeration:
    def test_exported_tree_visible_and_replay_header_complete(self):
        # Satellite 1: the export inventory walks the whole tree, so a
        # capture header's fileset re-creates every file on replay.
        tree = NamespaceTreeSpec(files=60, depth=1, fanout=4)
        result = run_namespace_once(
            TestbedConfig(seed=2, capture_trace=True), tree,
            NamespaceWorkload(pattern="stat", ops=10))
        exported = dict(result.trace.header.fileset)
        for path, size in tree.paths():
            assert exported.get(path) == size
