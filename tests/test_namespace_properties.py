"""Property-based tests for the Namespace tree (hypothesis).

The generator scripts random CREATE/MKDIR/REMOVE/RENAME sequences over
a small name pool — precondition failures included — and checks, after
every script, the invariants the fsck scanner enforces: the tree passes
:func:`verify_namespace` with zero violations, the flat ``files`` view
equals the set of reachable regular files, and a shadow model updated
only from *successful* operations agrees exactly with the tree.  A
second battery corrupts a healthy tree on purpose and proves
:func:`scan_and_heal` repairs it back to a verifiably consistent state.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import Partition, WDC_WD200BB
from repro.ffs.namespace import DIRENT_BYTES
from repro.ffs import (FileSystem, SequentialAllocator, scan_and_heal,
                       verify_namespace)
from repro.kernel import BufferCache, DiskIoScheduler
from repro.sim import Simulator

BLOCK = 8 * 1024

#: The deliberately tiny path pool: heavy collision pressure, so the
#: scripts hit exists/noent/isdir/notempty preconditions constantly.
NAMES = ["a", "b", "c", "d0/a", "d0/b", "d1/a", "d0", "d1", "d0/s"]

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(NAMES)),
        st.tuples(st.just("mkdir"), st.sampled_from(NAMES)),
        st.tuples(st.just("remove"), st.sampled_from(NAMES)),
        st.tuples(st.just("rename"),
                  st.tuples(st.sampled_from(NAMES),
                            st.sampled_from(NAMES))),
    ),
    max_size=60,
)

#: Everything the namespace's mutation verbs may legitimately raise.
EXPECTED = (FileExistsError, FileNotFoundError, IsADirectoryError,
            NotADirectoryError, OSError, ValueError)


def build_namespace():
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    iosched = DiskIoScheduler(sim, drive)
    cache = BufferCache(sim, iosched, capacity_bytes=8 << 20)
    allocator = SequentialAllocator(
        Partition("p1", first_lba=0, sectors=4_000_000))
    return FileSystem(sim, cache, allocator).namespace


class Model:
    """Shadow state: path -> "file" | "dir", fed only acked ops."""

    def __init__(self):
        self.nodes = {}

    def create(self, path):
        self.nodes[path] = "file"

    def mkdir(self, path):
        self.nodes[path] = "dir"

    def remove(self, path):
        del self.nodes[path]

    def rename(self, src, dst):
        moved = {}
        for path in list(self.nodes):
            if path == src:
                moved[dst] = self.nodes.pop(path)
            elif path.startswith(src + "/"):
                moved[dst + path[len(src):]] = self.nodes.pop(path)
        self.nodes.pop(dst, None)  # an empty-dir/file target is replaced
        self.nodes.update(moved)

    @property
    def files(self):
        return {p for p, t in self.nodes.items() if t == "file"}

    @property
    def dirs(self):
        return {p for p, t in self.nodes.items() if t == "dir"}


def apply_script(ns, script):
    """Run the script; return the model of what actually succeeded."""
    model = Model()
    for op, arg in script:
        try:
            if op == "create":
                ns.create(arg, BLOCK)
                model.create(arg)
            elif op == "mkdir":
                ns.mkdir(arg)
                model.mkdir(arg)
            elif op == "remove":
                ns.remove(arg)
                model.remove(arg)
            else:
                src, dst = arg
                if dst == src or dst.startswith(src + "/"):
                    continue  # cycle-making renames are out of scope
                ns.rename(src, dst)
                model.rename(src, dst)
        except EXPECTED:
            pass
    return model


class TestNamespaceInvariants:
    @given(script=OPS)
    @settings(max_examples=60, deadline=None)
    def test_tree_is_always_verifiably_consistent(self, script):
        ns = build_namespace()
        apply_script(ns, script)
        assert verify_namespace(ns) == []

    @given(script=OPS)
    @settings(max_examples=60, deadline=None)
    def test_tree_matches_the_acked_op_model(self, script):
        ns = build_namespace()
        model = apply_script(ns, script)
        assert set(ns.files) == model.files
        dirs = {path for path, _ in ns.walk_dirs() if path}
        assert dirs == model.dirs

    @given(script=OPS)
    @settings(max_examples=40, deadline=None)
    def test_fsck_on_a_healthy_tree_heals_nothing(self, script):
        ns = build_namespace()
        apply_script(ns, script)
        report = scan_and_heal(ns)
        assert report.consistent
        assert report.orphans_reclaimed == 0
        assert report.dangling_repaired == 0
        assert report.duplicates_dropped == 0
        assert report.slot_repairs == 0

    @given(script=OPS)
    @settings(max_examples=40, deadline=None)
    def test_slot_assignments_stay_dense_and_unique(self, script):
        ns = build_namespace()
        apply_script(ns, script)
        per_block = ns.block_size // DIRENT_BYTES
        for _, directory in ns.walk_dirs():
            values = sorted(directory.slots.values())
            assert len(set(values)) == len(values)
            assert all(v < directory._next_slot for v in values)
            assert not set(values) & set(directory._free)
            assert directory.slot_count <= (
                directory.inode.nblocks * per_block)


class TestFsckRepairs:
    """Deliberate corruption, then proof the scanner heals it."""

    def _seeded(self):
        ns = build_namespace()
        ns.mkdir("d")
        ns.create("d/keep", BLOCK)
        ns.create("top", BLOCK)
        return ns

    def test_orphan_files_entry_is_reclaimed(self):
        ns = self._seeded()
        ns.files["ghost"] = ns.files["top"]
        report = scan_and_heal(ns)
        assert report.orphans_reclaimed == 1
        assert report.unhealed == ()
        assert verify_namespace(ns) == []

    def test_dangling_tree_entry_is_reregistered(self):
        ns = self._seeded()
        del ns.files["d/keep"]
        report = scan_and_heal(ns)
        assert report.dangling_repaired == 1
        assert "d/keep" in ns.files
        assert verify_namespace(ns) == []

    def test_slot_bookkeeping_is_rebuilt(self):
        ns = self._seeded()
        directory = ns.resolve_dir("d")
        directory.slots["keep"] = directory._next_slot + 7
        report = scan_and_heal(ns)
        assert report.slot_repairs == 1
        assert verify_namespace(ns) == []

    @given(script=OPS)
    @settings(max_examples=25, deadline=None)
    def test_healing_random_orphans_always_converges(self, script):
        ns = build_namespace()
        apply_script(ns, script)
        if ns.files:
            first = sorted(ns.files)[0]
            ns.files["ghost/" + first] = ns.files[first]
        report = scan_and_heal(ns)
        assert report.unhealed == ()
        assert verify_namespace(ns) == []
