"""Unit tests for framing, links, UDP, and TCP."""

import random

import pytest

from repro.net import (DEFAULT_WINDOW, ETHERNET_MTU, GIGABIT, Link,
                       TcpConnection, UdpEndpoint, plan_tcp_stream,
                       plan_udp_datagram)
from repro.sim import RateLimiter, Simulator


class TestFraming:
    def test_small_udp_datagram_is_one_frame(self):
        plan = plan_udp_datagram(100)
        assert plan.frames == 1
        assert plan.wire_bytes > 100

    def test_8k_nfs_read_spans_six_frames(self):
        """The §5.4 arithmetic: an 8 KiB read reply fragments into six
        Ethernet frames."""
        assert plan_udp_datagram(8 * 1024 + 104).frames == 6

    def test_tcp_mss_slightly_smaller_than_udp_fragment(self):
        udp = plan_udp_datagram(64 * 1024)
        tcp = plan_tcp_stream(64 * 1024)
        assert tcp.frames >= udp.frames
        assert tcp.wire_bytes > udp.wire_bytes

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            plan_udp_datagram(-1)
        with pytest.raises(ValueError):
            plan_tcp_stream(-1)


class TestLink:
    def test_delivery_time_is_serialization_plus_latency(self):
        sim = Simulator()
        link = Link(sim, rate=1_000_000, latency=0.001)
        done = link.send(10_000)
        times = []
        done.add_callback(lambda ev: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(0.011)]

    def test_messages_serialize(self):
        sim = Simulator()
        link = Link(sim, rate=1_000_000, latency=0.0)
        times = []
        for _ in range(2):
            link.send(500_000).add_callback(
                lambda ev: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_bus_ceiling_applies(self):
        sim = Simulator()
        bus = RateLimiter(sim, 1_000)           # much slower than NIC
        link = Link(sim, rate=1_000_000, latency=0.0, bus=bus)
        times = []
        link.send(1_000).add_callback(lambda ev: times.append(sim.now))
        sim.run()
        assert times[0] >= 0.99  # bus-bound, not NIC-bound

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, rate=GIGABIT)
        link.send(1000)
        link.send(500)
        assert link.messages_sent == 2
        assert link.bytes_sent == 1500


def udp_pair(sim, loss=0.0):
    a = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                    rng=random.Random(1), name="a")
    b = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                    rng=random.Random(2), name="b")
    a.connect(b)
    b.connect(a)
    return a, b


class TestUdp:
    def test_round_trip_delivery(self):
        sim = Simulator()
        a, b = udp_pair(sim)
        received = []
        b.bind(received.append)
        a.send("hello", 1000)
        sim.run()
        assert received == ["hello"]

    def test_unbound_receiver_is_error(self):
        sim = Simulator()
        a, b = udp_pair(sim)
        a.send("msg", 100)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_loss_drops_whole_datagrams(self):
        sim = Simulator()
        a, b = udp_pair(sim, loss=0.2)
        received = []
        b.bind(received.append)
        for index in range(200):
            a.send(index, 8 * 1024)   # 6 frames each: high drop odds
        sim.run()
        assert 0 < len(received) < 200
        assert a.datagrams_lost == 200 - len(received)

    def test_zero_loss_is_lossless(self):
        sim = Simulator()
        a, b = udp_pair(sim)
        received = []
        b.bind(received.append)
        for index in range(50):
            a.send(index, 8192)
        sim.run()
        assert received == list(range(50))

    def test_bad_loss_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=1.0)


class TestTcp:
    def test_in_order_delivery(self):
        sim = Simulator()
        conn = TcpConnection(sim, Link(sim, GIGABIT))
        received = []
        conn.bind(received.append)
        for index in range(20):
            conn.send(index, 8 * 1024)
        sim.run()
        assert received == list(range(20))

    def test_window_paces_large_messages(self):
        sim = Simulator()
        slow_link = Link(sim, rate=1_000_000, latency=0.0)
        conn = TcpConnection(sim, slow_link, window=DEFAULT_WINDOW)
        received = []
        conn.bind(received.append)
        for index in range(4):
            conn.send(index, 64 * 1024)
        sim.run()
        assert received == [0, 1, 2, 3]
        # Four 64 KiB messages over a 1 MB/s link: >= 0.25 s.
        assert sim.now >= 0.25

    def test_loss_causes_retransmit_delay(self):
        sim = Simulator()
        lossy = TcpConnection(sim, Link(sim, GIGABIT), loss_rate=0.05,
                              retransmit_timeout=0.01,
                              rng=random.Random(3))
        received = []
        lossy.bind(received.append)
        for index in range(100):
            lossy.send(index, 8 * 1024)
        sim.run()
        assert received == list(range(100))   # reliable despite loss
        assert lossy.retransmits > 0

    def test_bad_window_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TcpConnection(sim, Link(sim, GIGABIT), window=0)
