"""Unit tests for the RPC layer over both transports."""

import random

import pytest

from repro.net import (GIGABIT, Link, RpcClient, RpcServer, RpcTimeout,
                       TcpConnection, UdpEndpoint)
from repro.sim import Simulator


def udp_channel(sim, loss=0.0, retransmit=None):
    client_ep = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                            rng=random.Random(10))
    server_ep = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                            rng=random.Random(11))
    client_ep.connect(server_ep)
    server_ep.connect(client_ep)
    client = RpcClient(sim, client_ep, client_ep,
                       retransmit_timeout=retransmit)
    server = RpcServer(sim, server_ep, server_ep)
    return client, server


def tcp_channel(sim):
    up = TcpConnection(sim, Link(sim, GIGABIT), name="up")
    down = TcpConnection(sim, Link(sim, GIGABIT), name="down")
    client = RpcClient(sim, up, down)
    server = RpcServer(sim, up, down)
    return client, server


def echo_handler(body):
    yield
    return None


def make_echo(sim, delay=0.0):
    def handler(body):
        if delay:
            yield sim.timeout(delay)
        else:
            yield sim.timeout(0)
        return f"echo:{body}", 100

    return handler


@pytest.mark.parametrize("make_channel", [udp_channel, tcp_channel])
def test_call_reply_round_trip(make_channel):
    sim = Simulator()
    client, server = make_channel(sim)
    server.serve(make_echo(sim))

    def caller(sim):
        reply = yield client.call("ping", 100)
        return reply

    assert sim.run_until_complete(sim.spawn(caller(sim))) == "echo:ping"
    assert client.calls == 1
    assert server.requests == 1


def test_concurrent_calls_matched_by_xid():
    sim = Simulator()
    client, server = udp_channel(sim)

    def handler(body):
        # Later requests finish *sooner*: replies come back reordered.
        yield sim.timeout(0.1 / (body + 1))
        return body * 10, 50

    server.serve(handler)
    results = {}

    def caller(sim, value):
        reply = yield client.call(value, 50)
        results[value] = reply

    for value in range(5):
        sim.spawn(caller(sim, value))
    sim.run()
    assert results == {value: value * 10 for value in range(5)}


def test_unserved_rpc_server_raises():
    sim = Simulator()
    client, server = udp_channel(sim)
    client.call("ping", 100)
    with pytest.raises(RuntimeError):
        sim.run()


def test_retransmission_recovers_lost_datagram():
    sim = Simulator()
    client, server = udp_channel(sim, loss=0.25, retransmit=0.05)
    server.serve(make_echo(sim))
    replies = []

    def caller(sim, index):
        reply = yield client.call(index, 100)
        replies.append(reply)

    for index in range(40):
        sim.spawn(caller(sim, index))
    sim.run(until=30.0)
    assert len(replies) == 40
    assert client.retransmitted > 0


def black_hole_channel(sim, retransmit=0.01, max_retransmits=3):
    """A client whose server never answers (requests vanish)."""
    client_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    server_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    client_ep.connect(server_ep)
    server_ep.connect(client_ep)
    server_ep.bind(lambda message: None)
    return RpcClient(sim, client_ep, client_ep,
                     retransmit_timeout=retransmit,
                     max_retransmits=max_retransmits)


def test_retransmit_exhaustion_fails_pending_with_rpc_timeout():
    sim = Simulator()
    client = black_hole_channel(sim, retransmit=0.01, max_retransmits=3)
    errors = []

    def caller(sim):
        try:
            yield client.call("ping", 10)
        except RpcTimeout as exc:
            errors.append(exc)
        return None

    sim.run_until_complete(sim.spawn(caller(sim)))
    assert len(errors) == 1
    assert errors[0].attempts == 4          # original + 3 retransmits
    assert client.retransmitted == 3
    assert client.timeouts == 1
    # The xid must be forgotten: no leak, and a late reply is ignored.
    assert client.pending_calls == 0


def test_hard_client_retries_forever():
    sim = Simulator()
    client = black_hole_channel(sim, retransmit=0.01,
                                max_retransmits=None)
    client.call("ping", 10)
    sim.run(until=5.0)
    assert client.pending_calls == 1
    assert client.timeouts == 0
    assert client.retransmitted > 5


def test_backoff_schedule_monotone_and_capped():
    sim = Simulator()
    client = black_hole_channel(sim, retransmit=0.9)
    schedule = [client.backoff_schedule(a) for a in range(12)]
    assert schedule[0] == 0.9
    assert all(later >= earlier for earlier, later
               in zip(schedule, schedule[1:]))
    assert schedule[-1] == client.max_timeout
    assert max(schedule) <= client.max_timeout


class _DropFirstSend:
    """Transport wrapper that swallows exactly one outgoing message."""

    def __init__(self, inner):
        self.inner = inner
        self.dropped = False

    def send(self, message, payload_bytes):
        if not self.dropped:
            self.dropped = True
            return
        self.inner.send(message, payload_bytes)

    def bind(self, receiver):
        self.inner.bind(receiver)


def lossy_reply_channel(sim, handler_delay):
    client_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    server_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    client_ep.connect(server_ep)
    server_ep.connect(client_ep)
    client = RpcClient(sim, client_ep, client_ep,
                       retransmit_timeout=0.05, max_retransmits=10)
    server = RpcServer(sim, server_ep, _DropFirstSend(server_ep),
                       track_duplicates=True)
    executions = []

    def handler(body):
        executions.append(body)
        yield sim.timeout(handler_delay)
        return f"ok:{body}", 10

    server.serve(handler)
    return client, server, executions


def test_dupreq_cache_resends_reply_without_reexecution():
    sim = Simulator()
    # Handler finishes before the retransmission arrives, but its reply
    # is lost: the retransmission must be answered from the cache.
    client, server, executions = lossy_reply_channel(sim,
                                                     handler_delay=0.001)

    def caller(sim):
        reply = yield client.call("p", 10)
        return reply

    assert sim.run_until_complete(sim.spawn(caller(sim))) == "ok:p"
    assert executions == ["p"]
    assert server.executed == 1
    assert server.dupreq_hits >= 1
    assert server.duplicate_executions == 0


def test_dupreq_cache_drops_retransmission_of_in_flight_request():
    sim = Simulator()
    # Handler is slower than the retransmit timer: the copies arriving
    # mid-execution are dropped, and the one eventual reply answers.
    client, server, executions = lossy_reply_channel(sim,
                                                     handler_delay=0.4)

    def caller(sim):
        reply = yield client.call("q", 10)
        return reply

    assert sim.run_until_complete(sim.spawn(caller(sim))) == "ok:q"
    assert executions == ["q"]
    assert server.dupreq_in_progress_drops >= 1
    assert server.duplicate_executions == 0


def test_disabled_dupreq_cache_reexecutes():
    sim = Simulator()
    client_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    server_ep = UdpEndpoint(sim, Link(sim, GIGABIT))
    client_ep.connect(server_ep)
    server_ep.connect(client_ep)
    client = RpcClient(sim, client_ep, client_ep,
                       retransmit_timeout=0.05, max_retransmits=10)
    server = RpcServer(sim, server_ep, _DropFirstSend(server_ep),
                       dupreq_cache_size=0, track_duplicates=True)

    def handler(body):
        yield sim.timeout(0.001)
        return "ok", 10

    server.serve(handler)

    def caller(sim):
        reply = yield client.call("r", 10)
        return reply

    assert sim.run_until_complete(sim.spawn(caller(sim))) == "ok"
    # Without the cache the retransmitted request runs again — the
    # failure mode the cache exists to prevent.
    assert server.duplicate_executions >= 1


def test_reply_payload_includes_headers():
    sim = Simulator()
    client, server = udp_channel(sim)
    server.serve(make_echo(sim))

    def caller(sim):
        reply = yield client.call("x", 0)
        return reply

    sim.run_until_complete(sim.spawn(caller(sim)))
    # Both directions moved more bytes than the bare payloads.
    assert client.out.tx_link.bytes_sent > 0
