"""Unit tests for the RPC layer over both transports."""

import random

import pytest

from repro.net import (GIGABIT, Link, RpcClient, RpcServer, TcpConnection,
                       UdpEndpoint)
from repro.sim import Simulator


def udp_channel(sim, loss=0.0, retransmit=None):
    client_ep = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                            rng=random.Random(10))
    server_ep = UdpEndpoint(sim, Link(sim, GIGABIT), loss_rate=loss,
                            rng=random.Random(11))
    client_ep.connect(server_ep)
    server_ep.connect(client_ep)
    client = RpcClient(sim, client_ep, client_ep,
                       retransmit_timeout=retransmit)
    server = RpcServer(sim, server_ep, server_ep)
    return client, server


def tcp_channel(sim):
    up = TcpConnection(sim, Link(sim, GIGABIT), name="up")
    down = TcpConnection(sim, Link(sim, GIGABIT), name="down")
    client = RpcClient(sim, up, down)
    server = RpcServer(sim, up, down)
    return client, server


def echo_handler(body):
    yield
    return None


def make_echo(sim, delay=0.0):
    def handler(body):
        if delay:
            yield sim.timeout(delay)
        else:
            yield sim.timeout(0)
        return f"echo:{body}", 100

    return handler


@pytest.mark.parametrize("make_channel", [udp_channel, tcp_channel])
def test_call_reply_round_trip(make_channel):
    sim = Simulator()
    client, server = make_channel(sim)
    server.serve(make_echo(sim))

    def caller(sim):
        reply = yield client.call("ping", 100)
        return reply

    assert sim.run_until_complete(sim.spawn(caller(sim))) == "echo:ping"
    assert client.calls == 1
    assert server.requests == 1


def test_concurrent_calls_matched_by_xid():
    sim = Simulator()
    client, server = udp_channel(sim)

    def handler(body):
        # Later requests finish *sooner*: replies come back reordered.
        yield sim.timeout(0.1 / (body + 1))
        return body * 10, 50

    server.serve(handler)
    results = {}

    def caller(sim, value):
        reply = yield client.call(value, 50)
        results[value] = reply

    for value in range(5):
        sim.spawn(caller(sim, value))
    sim.run()
    assert results == {value: value * 10 for value in range(5)}


def test_unserved_rpc_server_raises():
    sim = Simulator()
    client, server = udp_channel(sim)
    client.call("ping", 100)
    with pytest.raises(RuntimeError):
        sim.run()


def test_retransmission_recovers_lost_datagram():
    sim = Simulator()
    client, server = udp_channel(sim, loss=0.25, retransmit=0.05)
    server.serve(make_echo(sim))
    replies = []

    def caller(sim, index):
        reply = yield client.call(index, 100)
        replies.append(reply)

    for index in range(40):
        sim.spawn(caller(sim, index))
    sim.run(until=30.0)
    assert len(replies) == 40
    assert client.retransmitted > 0


def test_reply_payload_includes_headers():
    sim = Simulator()
    client, server = udp_channel(sim)
    server.serve(make_echo(sim))

    def caller(sim):
        reply = yield client.call("x", 0)
        return reply

    sim.run_until_complete(sim.spawn(caller(sim)))
    # Both directions moved more bytes than the bare payloads.
    assert client.out.tx_link.bytes_sent > 0
