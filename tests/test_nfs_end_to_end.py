"""Integration tests: the full NFS client/server path."""

import pytest

from repro.bench.readers import ReaderResult, stride_reader
from repro.host import TestbedConfig, build_nfs_testbed
from repro.nfs import NFS_READ_SIZE

BLOCK = NFS_READ_SIZE
MB = 1 << 20


def read_file_via_nfs(testbed, name, chunks):
    """Read a file through the mount; returns total bytes read."""

    def reader(sim):
        nfile = yield from testbed.mount.open(name)
        total = 0
        for offset, nbytes in chunks:
            got = yield from testbed.mount.read(nfile, offset, nbytes)
            total += got
        return total

    process = testbed.sim.spawn(reader(testbed.sim))
    return testbed.sim.run_until_complete(process)


class TestReadPath:
    def test_full_file_read_returns_every_byte(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 2 * MB)
        chunks = [(offset, 64 * 1024)
                  for offset in range(0, 2 * MB, 64 * 1024)]
        assert read_file_via_nfs(testbed, "data", chunks) == 2 * MB

    def test_read_clamped_at_eof(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", BLOCK + 100)
        got = read_file_via_nfs(testbed, "data", [(BLOCK, BLOCK)])
        assert got == 100

    def test_read_past_eof_returns_zero(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", BLOCK)
        assert read_file_via_nfs(testbed, "data", [(5 * BLOCK, BLOCK)]) \
            == 0

    def test_server_counts_reads(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 1 * MB)
        chunks = [(offset, BLOCK) for offset in range(0, MB, BLOCK)]
        read_file_via_nfs(testbed, "data", chunks)
        assert testbed.server.stats.reads >= MB // BLOCK
        assert testbed.server.stats.bytes_served >= MB

    def test_client_cache_hit_on_reread(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 4 * BLOCK)
        read_file_via_nfs(testbed, "data",
                          [(0, BLOCK), (0, BLOCK)])
        assert testbed.mount.stats.cache_hits >= 1

    def test_flush_cache_forces_rpc_again(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 4 * BLOCK)
        read_file_via_nfs(testbed, "data", [(0, BLOCK)])
        before = testbed.mount.stats.rpc_reads
        testbed.flush_caches()
        read_file_via_nfs(testbed, "data", [(0, BLOCK)])
        assert testbed.mount.stats.rpc_reads > before

    @pytest.mark.parametrize("transport", ["udp", "tcp"])
    def test_both_transports_deliver_everything(self, transport):
        testbed = build_nfs_testbed(TestbedConfig(transport=transport))
        testbed.server.export_file("data", MB)
        chunks = [(offset, 128 * 1024)
                  for offset in range(0, MB, 128 * 1024)]
        assert read_file_via_nfs(testbed, "data", chunks) == MB

    def test_sequential_read_triggers_client_readahead(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", MB)
        chunks = [(offset, BLOCK) for offset in range(0, MB, BLOCK)]
        read_file_via_nfs(testbed, "data", chunks)
        assert testbed.mount.stats.readahead_issued > 0

    def test_stride_read_skips_client_readahead(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", MB)
        result = ReaderResult("data")

        def open_fn():
            nfile = yield from testbed.mount.open("data")
            return nfile

        def read_fn(handle, offset, nbytes):
            got = yield from testbed.mount.read(handle, offset, nbytes)
            return got

        process = testbed.sim.spawn(stride_reader(
            testbed.sim, open_fn, read_fn, MB, 8, result))
        testbed.sim.run_until_complete(process)
        # A fresh handle's first access looks sequential (warmup), so a
        # couple of read-aheads may fire before the stride is detected.
        assert testbed.mount.stats.readahead_issued <= 2
        assert result.bytes_read == MB // BLOCK * BLOCK

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            build_nfs_testbed(TestbedConfig(transport="sctp"))


class TestHeuristicPlumbing:
    def test_always_heuristic_maximizes_server_seqcount(self):
        always = build_nfs_testbed(TestbedConfig(
            server_heuristic="always"))
        default = build_nfs_testbed(TestbedConfig(
            server_heuristic="default"))
        for testbed in (always, default):
            testbed.server.export_file("data", MB)
            chunks = [(offset, BLOCK) for offset in range(0, MB, BLOCK)]
            read_file_via_nfs(testbed, "data", chunks)
        assert always.server.stats.mean_seqcount > \
            default.server.stats.mean_seqcount

    def test_nfsheur_table_populated(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 4 * BLOCK)
        read_file_via_nfs(testbed, "data", [(0, BLOCK)])
        fh = testbed.server.fh_of("data")
        assert testbed.server.nfsheur.resident(fh)

    def test_heuristic_options_forwarded(self):
        testbed = build_nfs_testbed(TestbedConfig(
            server_heuristic="cursor",
            heuristic_options={"cursor_limit": 3}))
        assert testbed.server.heuristic.cursor_limit == 3
