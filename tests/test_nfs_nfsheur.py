"""Unit tests for the nfsheur table (§6.3)."""

import pytest

from repro.nfs import (DEFAULT_NFSHEUR, IMPROVED_NFSHEUR, FileHandle,
                       NfsHeurParams, NfsHeurTable)

BLOCK = 8 * 1024


def fh(identifier):
    return FileHandle(id=identifier)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            NfsHeurParams(table_size=0, max_probes=1, scrambled_hash=True)
        with pytest.raises(ValueError):
            NfsHeurParams(table_size=4, max_probes=5, scrambled_hash=True)
        with pytest.raises(ValueError):
            NfsHeurParams(table_size=4, max_probes=2, scrambled_hash=True,
                          use_inc=0)

    def test_slots_within_table(self):
        for params in (DEFAULT_NFSHEUR, IMPROVED_NFSHEUR):
            for identifier in range(1000):
                for probe in range(params.max_probes):
                    slot = params.slot_of(fh(identifier), probe)
                    assert 0 <= slot < params.table_size

    def test_probe_window_is_consecutive(self):
        params = IMPROVED_NFSHEUR
        base = params.slot_of(fh(7), 0)
        for probe in range(params.max_probes):
            assert params.slot_of(fh(7), probe) == \
                (base + probe) % params.table_size

    def test_improved_is_larger(self):
        assert IMPROVED_NFSHEUR.table_size > DEFAULT_NFSHEUR.table_size


class TestLookup:
    def test_install_then_hit(self):
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        first = table.lookup(fh(1), 0)
        second = table.lookup(fh(1), BLOCK)
        assert first is second
        assert table.stats.hits == 1
        assert table.stats.installs == 1

    def test_fresh_entry_primed_with_offset_and_install_count(self):
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        state = table.lookup(fh(1), offset=40 * BLOCK)
        assert state.next_offset == 40 * BLOCK
        assert state.seq_count == DEFAULT_NFSHEUR.install_seqcount

    def test_states_are_per_handle(self):
        table = NfsHeurTable(IMPROVED_NFSHEUR)
        state_a = table.lookup(fh(1), 0)
        state_b = table.lookup(fh(2), 0)
        assert state_a is not state_b

    def test_resident_probe_has_no_side_effects(self):
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        assert not table.resident(fh(1))
        table.lookup(fh(1), 0)
        lookups = table.stats.lookups
        assert table.resident(fh(1))
        assert table.stats.lookups == lookups

    def test_occupancy_counts_filled_slots(self):
        table = NfsHeurTable(IMPROVED_NFSHEUR)
        for identifier in range(5):
            table.lookup(fh(identifier), 0)
        assert table.occupancy == 5


class TestThrash:
    def test_small_working_set_never_ejects(self):
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        for _round in range(20):
            for identifier in range(3):
                table.lookup(fh(identifier), 0)
        assert table.stats.ejections == 0

    def test_large_working_set_thrashes_default_table(self):
        """§6.3: more active files than the default table can hold."""
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        files = DEFAULT_NFSHEUR.table_size * 4
        for _round in range(20):
            for identifier in range(files):
                table.lookup(fh(identifier), 0)
        assert table.stats.ejections > 0
        assert table.stats.hit_rate < 0.9

    def test_improved_table_fixes_the_same_working_set(self):
        default_table = NfsHeurTable(DEFAULT_NFSHEUR)
        improved_table = NfsHeurTable(IMPROVED_NFSHEUR)
        files = DEFAULT_NFSHEUR.table_size * 4
        for _round in range(20):
            for identifier in range(files):
                default_table.lookup(fh(identifier), 0)
                improved_table.lookup(fh(identifier), 0)
        assert improved_table.stats.hit_rate > \
            default_table.stats.hit_rate
        assert improved_table.stats.ejections == 0

    def test_ejection_loses_sequentiality_state(self):
        """The paper's core failure mode: a correctly maintained
        seqCount is worthless if the entry is ejected before reuse."""
        params = NfsHeurParams(table_size=1, max_probes=1,
                               scrambled_hash=False)
        table = NfsHeurTable(params)
        state = table.lookup(fh(1), 0)
        state.seq_count = 100
        table.lookup(fh(2), 0)          # ejects fh(1)
        fresh = table.lookup(fh(1), 0)  # reinstall
        assert fresh.seq_count == params.install_seqcount

    def test_active_streamer_survives_one_off_probes(self):
        """Use-count dynamics: a hot entry outlives drive-by misses."""
        params = NfsHeurParams(table_size=1, max_probes=1,
                               scrambled_hash=False)
        table = NfsHeurTable(params)
        for _ in range(50):
            table.lookup(fh(1), 0)       # accumulate heat
        table.lookup(fh(2), 0)           # newcomer, colder than fh(1)
        assert table.resident(fh(1))

    def test_decay_halves_use_counts(self):
        table = NfsHeurTable(DEFAULT_NFSHEUR)
        table.lookup(fh(1), 0)
        table.lookup(fh(1), 0)
        table.decay()  # must not crash; counts shrink
        assert table.resident(fh(1))
