"""Golden determinism battery: tracing must not perturb the simulation.

Two experiments — the paper's headline NFS/UDP figure and the fault
extension — each run three times with the same seed: instrumentation
off, on, and on again.  The rendered results must be byte-identical
across all three (tracing does not perturb the simulation), and the two
instrumented runs must produce identical span streams and metric
snapshots (the instrumentation itself is deterministic).
"""

import hashlib

import pytest

from repro.experiments import get
from repro.obs import check_well_formed, observe

SEED = 7


def span_digest(spans):
    """A compact fingerprint of a span stream's full identity."""
    digest = hashlib.sha256()
    for span in spans:
        digest.update(repr(span.key()).encode())
    return digest.hexdigest()


def run_experiment(experiment_id, scale):
    return get(experiment_id).run(scale=scale, runs=1, seed=SEED)


CASES = [
    ("fig4", 1 / 64),      # fig4_nfs_udp: the full NFS/UDP read path
    ("xfaults", 1 / 32),   # xfaults_degradation: retransmit/dupreq path
]


@pytest.fixture(scope="module", params=CASES,
                ids=[case[0] for case in CASES])
def golden(request):
    """Off/on/on runs of one experiment (module-cached: these are the
    expensive runs in this file)."""
    experiment_id, scale = request.param
    baseline = run_experiment(experiment_id, scale)
    with observe(trace=True, metrics=True) as first:
        traced_a = run_experiment(experiment_id, scale)
    with observe(trace=True, metrics=True) as second:
        traced_b = run_experiment(experiment_id, scale)
    return baseline, traced_a, traced_b, first, second


class TestNoPerturbation:
    def test_results_identical_with_tracing_off_and_on(self, golden):
        baseline, traced_a, traced_b, _first, _second = golden
        assert traced_a.render() == baseline.render()
        assert traced_b.render() == baseline.render()

    def test_point_values_bit_identical(self, golden):
        baseline, traced_a, _traced_b, _first, _second = golden
        for base_series, traced_series in zip(baseline.series,
                                              traced_a.series):
            assert base_series.label == traced_series.label
            for (bx, bsum), (tx, tsum) in zip(base_series.points,
                                              traced_series.points):
                assert bx == tx
                assert bsum.mean == tsum.mean  # == : bit-identical


class TestInstrumentationDeterminism:
    def test_span_streams_identical_across_reruns(self, golden):
        *_runs, first, second = golden
        assert len(first.spans) > 0
        assert span_digest(first.spans) == span_digest(second.spans)

    def test_metric_snapshots_identical_across_reruns(self, golden):
        *_runs, first, second = golden
        assert len(first.snapshots) > 0
        assert first.snapshots == second.snapshots

    def test_span_streams_well_formed_per_run(self, golden):
        # Each run has its own simulator clock, so well-formedness
        # (nesting, finish order) is checked run by run.
        *_runs, first, _second = golden
        assert len(first.runs) > 0
        for run_spans in first.runs:
            assert check_well_formed(run_spans) == []

    def test_session_span_ids_unique_across_runs(self, golden):
        *_runs, first, _second = golden
        ids = [span.id for span in first.spans]
        assert len(ids) == len(set(ids))

    def test_no_spans_left_open(self, golden):
        *_runs, first, _second = golden
        # Every started span was finished and recorded: a leak here
        # means some layer opens spans it never closes.
        assert all(span.end is not None for span in first.spans)
