"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (Counter, Gauge, HISTOGRAM_BOUNDS,
                               LatencyHistogram, MetricsRegistry,
                               NULL_REGISTRY, merge_snapshots,
                               render_snapshot)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestGauge:
    def test_callable_gauge_is_lazy(self):
        state = {"v": 1.0}
        gauge = Gauge("depth", lambda: state["v"])
        assert gauge.read() == 1.0
        state["v"] = 7.5
        assert gauge.read() == 7.5

    def test_set_overrides_callable(self):
        gauge = Gauge("depth", lambda: 1.0)
        gauge.set(3)
        assert gauge.read() == 3.0


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram("lat")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.snapshot()["buckets"] == {}

    def test_observations(self):
        hist = LatencyHistogram("lat")
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.006)
        assert hist.min == 0.001
        assert hist.max == 0.003
        assert hist.mean == pytest.approx(0.002)

    def test_bucket_placement_is_upper_bound_inclusive(self):
        hist = LatencyHistogram("lat")
        # Exactly on the first bound (1 µs) lands in the first bucket.
        hist.observe(HISTOGRAM_BOUNDS[0])
        assert hist.buckets[0] == 1
        # Just above it lands in the second.
        hist.observe(HISTOGRAM_BOUNDS[0] * 1.5)
        assert hist.buckets[1] == 1

    def test_overflow_bucket(self):
        hist = LatencyHistogram("lat")
        hist.observe(HISTOGRAM_BOUNDS[-1] * 2)
        assert hist.snapshot()["buckets"] == {"overflow": 1}

    def test_bucket_counts_sum_to_count(self):
        hist = LatencyHistogram("lat")
        for value in (1e-7, 1e-3, 0.5, 100.0, 1e-3):
            hist.observe(value)
        assert sum(hist.buckets) == hist.count == 5
        snap = hist.snapshot()
        assert sum(snap["buckets"].values()) == 5


class TestMetricsRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_enabled(self):
        assert MetricsRegistry().enabled is True

    def test_snapshot_shape_and_sorted_keys(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count").inc()
        registry.gauge("depth", lambda: 3.0)
        registry.histogram("lat").observe(0.01)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["counters"]["b.count"] == 2
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["lat"]["count"] == 1

    def test_render_mentions_each_section(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        text = registry.render()
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms" in text
        assert "(no metrics recorded)" == render_snapshot({})


class TestMergeSnapshots:
    def _registry(self, scale):
        registry = MetricsRegistry()
        registry.counter("ops").inc(10 * scale)
        registry.gauge("depth").set(2.0 * scale)
        hist = registry.histogram("lat")
        hist.observe(0.001 * scale)
        hist.observe(0.002 * scale)
        return registry.snapshot()

    def test_counters_sum_gauges_average(self):
        merged = merge_snapshots([self._registry(1), self._registry(3)])
        assert merged["counters"]["ops"] == 40
        assert merged["gauges"]["depth"] == pytest.approx(4.0)

    def test_histograms_merge(self):
        merged = merge_snapshots([self._registry(1), self._registry(3)])
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(0.012)
        assert hist["min"] == 0.001
        assert hist["max"] == 0.006
        assert hist["mean"] == pytest.approx(0.003)
        assert sum(hist["buckets"].values()) == 4

    def test_empty_merge(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestNullRegistry:
    def test_disabled_and_shared(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")

    def test_noop_instruments(self):
        counter = NULL_REGISTRY.counter("x")
        counter.inc(5)
        assert counter.value == 0
        hist = NULL_REGISTRY.histogram("x")
        hist.observe(1.0)
        assert hist.count == 0
        gauge = NULL_REGISTRY.gauge("x", lambda: 9.0)
        assert gauge.read() == 0.0

    def test_empty_snapshot(self):
        assert NULL_REGISTRY.snapshot() == {}
        assert "disabled" in NULL_REGISTRY.render()
