"""End-to-end metrics accounting: the layers must sum to the client.

A seeded single-reader sequential run over NFS/UDP with read-ahead
disabled (client ``readahead_blocks = 0``, server heuristic ``none``)
keeps exactly one request in flight at a time, so the per-layer latency
histograms must tile the client-observed elapsed time exactly:

* reader elapsed  = client marshal/receive CPU + sum of RPC RTTs
* RTT total       = wire time (both directions) + server handle time
* handle total    = nfsd queue wait + per-op service time
* READ service    = server CPU + file-system read time
* fs read         = buffer-cache wait + per-call FFS read overhead

Any drift beyond float-summation error means a layer is double-counted
or unaccounted — exactly the bug class this battery exists to catch.
"""

import pytest

from repro.bench.readers import ReaderResult, sequential_reader
from repro.host.testbed import TestbedConfig, build_nfs_testbed

REL_TOL = 1e-9
SIZE = 512 * 1024


@pytest.fixture(scope="module")
def accounted_run():
    """One clean, metered, single-reader sequential NFS read."""
    config = TestbedConfig(drive="scsi", partition=1, transport="udp",
                           server_heuristic="none", seed=3, metrics=True)
    testbed = build_nfs_testbed(config)
    # No client read-ahead: every block is fetched synchronously, so
    # the reader's elapsed time decomposes exactly.
    testbed.mount.config.readahead_blocks = 0
    testbed.server.export_file("f0", SIZE)
    result = ReaderResult("f0")

    def open_fn(span=None):
        nfile = yield from testbed.mount.open("f0", span=span)
        return nfile

    def read_fn(handle, offset, nbytes, span=None):
        got = yield from testbed.mount.read(handle, offset, nbytes,
                                            span=span)
        return got

    testbed.sim.spawn(
        sequential_reader(testbed.sim, open_fn, read_fn, SIZE, result,
                          tracer=testbed.obs.tracer),
        name="reader:f0")
    testbed.sim.run()
    assert result.bytes_read == SIZE
    return result, testbed.obs.registry.snapshot(), \
        testbed.fs.params.read_overhead


def hist_sum(snapshot, name):
    hist = snapshot["histograms"].get(name)
    return hist["sum"] if hist else 0.0


def hist_count(snapshot, name):
    hist = snapshot["histograms"].get(name)
    return hist["count"] if hist else 0


def prefixed_sum(snapshot, prefix):
    return sum(hist["sum"]
               for name, hist in snapshot["histograms"].items()
               if name.startswith(prefix))


class TestLayerAccounting:
    def test_client_layers_sum_to_reader_elapsed(self, accounted_run):
        result, snap, _overhead = accounted_run
        accounted = (hist_sum(snap, "nfs.client.cpu_s")
                     + prefixed_sum(snap, "nfs.client.rtt_s.")
                     + hist_sum(snap, "nfs.client.nfsiod_wait_s"))
        assert result.elapsed == pytest.approx(accounted, rel=REL_TOL)

    def test_rtt_splits_into_wire_plus_server_handle(self, accounted_run):
        _result, snap, _overhead = accounted_run
        rtt = prefixed_sum(snap, "nfs.client.rtt_s.")
        assert rtt == pytest.approx(
            hist_sum(snap, "net.wire_s")
            + hist_sum(snap, "rpc.server.handle_s"), rel=REL_TOL)
        # One RPC at a time: each call crosses the wire exactly twice.
        rtt_count = sum(
            hist["count"] for name, hist in snap["histograms"].items()
            if name.startswith("nfs.client.rtt_s."))
        assert hist_count(snap, "net.wire_s") == 2 * rtt_count

    def test_handle_splits_into_queue_wait_plus_service(
            self, accounted_run):
        _result, snap, _overhead = accounted_run
        assert hist_sum(snap, "rpc.server.handle_s") == pytest.approx(
            hist_sum(snap, "nfs.server.nfsd_wait_s")
            + prefixed_sum(snap, "nfs.server.service_s."), rel=REL_TOL)

    def test_read_service_splits_into_cpu_plus_fsread(
            self, accounted_run):
        _result, snap, _overhead = accounted_run
        assert hist_sum(snap, "nfs.server.service_s.ReadRequest") == \
            pytest.approx(hist_sum(snap, "nfs.server.cpu_s")
                          + hist_sum(snap, "nfs.server.fsread_s"),
                          rel=REL_TOL)

    def test_fsread_splits_into_cache_wait_plus_overhead(
            self, accounted_run):
        _result, snap, read_overhead = accounted_run
        n_reads = hist_count(snap, "nfs.server.fsread_s")
        assert n_reads == hist_count(snap, "ffs.cache_wait_s")
        assert hist_sum(snap, "nfs.server.fsread_s") == pytest.approx(
            hist_sum(snap, "ffs.cache_wait_s")
            + n_reads * read_overhead, rel=REL_TOL)

    def test_block_wait_never_exceeds_elapsed(self, accounted_run):
        result, snap, _overhead = accounted_run
        assert hist_sum(snap, "nfs.client.block_wait_s") <= \
            result.elapsed * (1 + REL_TOL)

    def test_disk_bytes_by_zone_cover_the_file(self, accounted_run):
        _result, snap, _overhead = accounted_run
        zone_bytes = sum(
            value for name, value in snap["gauges"].items()
            if name.startswith("disk.zone") and
            name.endswith(".bytes_read"))
        assert zone_bytes >= SIZE


class TestTracedRunExport:
    """Acceptance: a traced NFS run exports Perfetto-loadable JSON with
    spans for every request-path layer."""

    @pytest.fixture(scope="class")
    def traced_session(self):
        from repro.bench.runner import run_nfs_once
        from repro.obs import observe

        config = TestbedConfig(drive="scsi", partition=1,
                               transport="udp", seed=7)
        with observe(trace=True) as session:
            run_nfs_once(config, 2, scale=1 / 64)
        return session

    def test_all_request_path_layers_present(self, traced_session):
        from repro.obs.export import LAYER_CATEGORIES

        categories = {span.cat for span in traced_session.spans}
        missing = [cat for cat in LAYER_CATEGORIES
                   if cat not in categories]
        assert missing == []

    def test_stream_is_well_formed(self, traced_session):
        from repro.obs import check_well_formed

        assert check_well_formed(traced_session.spans) == []

    def test_json_is_trace_event_format(self, traced_session):
        import json

        payload = json.loads(traced_session.trace_json())
        events = payload["traceEvents"]
        assert len(events) == len(traced_session.spans)
        for event in events[:50]:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ts", "dur",
                                  "pid", "tid", "args"}
