"""Property tests for the observability layer.

* Randomly generated span trees (nested, with detached asynchronous
  children) always satisfy :func:`check_well_formed`.
* The Chrome trace_event export round-trips any span stream losslessly
  (float timestamps and args included).
* Histogram invariants hold for arbitrary observation sequences.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.export import dumps_trace, loads_trace
from repro.obs.metrics import LatencyHistogram, merge_snapshots
from repro.obs.span import SpanTracer, check_well_formed

CATEGORIES = ("bench", "client.vnode", "net.rpc", "server.nfsd",
              "kernel.buffercache", "disk.mechanics")

arg_values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=10),
    st.booleans(),
)
# Keys stay clear of the export's reserved arg names (span_id,
# parent_id, detached, t0, t1) — a-z only and short enough that
# "detached" cannot be generated — and of SpanTracer.start()'s own
# parameter names, which would collide with the **args expansion.
arg_dicts = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=6).filter(
        lambda key: key not in {"name", "cat", "parent", "t0", "t1"}),
    arg_values, max_size=3)

ticks = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def span_trees(draw):
    """Build a random finished span stream via the real tracer.

    Spans nest like call frames (children open and close inside their
    parent); detached children start inside the parent but close after
    everything else — exactly the asynchronous-worker shape the
    simulator produces.
    """
    clock = {"now": 0.0}
    tracer = SpanTracer()
    tracer.bind_clock(lambda: clock["now"])
    detached = []

    def tick():
        clock["now"] += draw(ticks)

    def build(parent, depth):
        tick()
        span = tracer.start(f"s{tracer.started}",
                            draw(st.sampled_from(CATEGORIES)),
                            parent=parent, **draw(arg_dicts))
        if depth < 3:
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                if draw(st.booleans()):
                    child = tracer.start(
                        f"async{tracer.started}",
                        draw(st.sampled_from(CATEGORIES)),
                        parent=span, detached=True)
                    detached.append(child)
                else:
                    build(span, depth + 1)
        tick()
        span.finish()

    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        build(None, 0)
    for child in detached:
        tick()
        child.finish()
    return tracer.spans


@settings(max_examples=50, deadline=None)
@given(span_trees())
def test_generated_trees_are_well_formed(spans):
    assert check_well_formed(spans) == []


@settings(max_examples=50, deadline=None)
@given(span_trees())
def test_trace_event_round_trip_is_lossless(spans):
    back = loads_trace(dumps_trace(spans))
    assert [s.key() for s in back] == [s.key() for s in spans]


@settings(max_examples=50, deadline=None)
@given(span_trees())
def test_export_import_export_is_byte_stable(spans):
    text = dumps_trace(spans)
    assert dumps_trace(loads_trace(text)) == text


durations = st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(st.lists(durations, max_size=50))
def test_histogram_invariants(samples):
    hist = LatencyHistogram("lat")
    for value in samples:
        hist.observe(value)
    assert hist.count == len(samples)
    assert sum(hist.buckets) == len(samples)
    if samples:
        assert hist.min == min(samples)
        assert hist.max == max(samples)
        assert math.isclose(hist.total, math.fsum(samples),
                            rel_tol=1e-9, abs_tol=1e-12)
        assert hist.min <= hist.mean <= hist.max or math.isclose(
            hist.mean, hist.min, rel_tol=1e-9)
    snap = hist.snapshot()
    assert snap["count"] == len(samples)
    assert sum(snap["buckets"].values()) == len(samples)


@settings(max_examples=50, deadline=None)
@given(st.lists(durations, min_size=1, max_size=20),
       st.integers(min_value=1, max_value=4))
def test_merged_histogram_equals_concatenated_observations(samples, copies):
    hist = LatencyHistogram("lat")
    for value in samples:
        hist.observe(value)
    snap = {"histograms": {"lat": hist.snapshot()}}
    merged = merge_snapshots([snap] * copies)["histograms"]["lat"]
    assert merged["count"] == len(samples) * copies
    assert math.isclose(merged["sum"], hist.total * copies,
                        rel_tol=1e-9, abs_tol=1e-12)
    assert merged["min"] == hist.min
    assert merged["max"] == hist.max
