"""Unit tests for span tracing and the trace_event export."""

import json

from repro.obs.export import (LAYER_CATEGORIES, dumps_trace, loads_trace,
                              to_trace_events)
from repro.obs.span import (NULL_SPAN, NULL_TRACER, SpanTracer,
                            check_well_formed)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_tracer():
    clock = ManualClock()
    tracer = SpanTracer()
    tracer.bind_clock(clock)
    return tracer, clock


class TestSpanTracer:
    def test_start_finish_records_in_finish_order(self):
        tracer, clock = make_tracer()
        outer = tracer.start("outer", "bench")
        clock.advance(1.0)
        inner = tracer.start("inner", "net.rpc", parent=outer)
        clock.advance(1.0)
        inner.finish()
        clock.advance(1.0)
        outer.finish()
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.id
        assert inner.start == 1.0 and inner.end == 2.0
        assert outer.duration == 3.0

    def test_finish_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.start("s", "bench")
        clock.advance(1.0)
        span.finish()
        clock.advance(5.0)
        span.finish()
        assert span.end == 1.0
        assert len(tracer.spans) == 1

    def test_parent_accepts_span_id_and_none(self):
        tracer, _clock = make_tracer()
        root = tracer.start("r", "bench")
        by_span = tracer.start("a", "net.rpc", parent=root)
        by_id = tracer.start("b", "net.rpc", parent=root.id)
        no_parent = tracer.start("c", "net.rpc")
        via_null = tracer.start("d", "net.rpc", parent=NULL_SPAN)
        assert by_span.parent_id == root.id
        assert by_id.parent_id == root.id
        assert no_parent.parent_id is None
        assert via_null.parent_id is None

    def test_open_count(self):
        tracer, _clock = make_tracer()
        span = tracer.start("s", "bench")
        assert tracer.open_count == 1
        span.finish()
        assert tracer.open_count == 0

    def test_args_set_and_finish_merge(self):
        tracer, _clock = make_tracer()
        span = tracer.start("s", "bench", xid=1)
        span.set(block=2)
        span.finish(ok=True)
        assert span.args == {"xid": 1, "block": 2, "ok": True}


class TestNullTracer:
    def test_disabled_returns_shared_null_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.start("s", "bench", xid=1)
        assert span is NULL_SPAN
        span.set(a=1)
        span.finish(b=2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.open_count == 0


class TestCheckWellFormed:
    def _tree(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "bench")
        clock.advance(1.0)
        child = tracer.start("child", "net.rpc", parent=root)
        clock.advance(1.0)
        child.finish()
        clock.advance(1.0)
        root.finish()
        return tracer

    def test_clean_tree_passes(self):
        assert check_well_formed(self._tree().spans) == []

    def test_unfinished_span_detected(self):
        tracer, _clock = make_tracer()
        span = tracer.start("s", "bench")
        tracer.spans.append(span)  # forced into the stream unfinished
        problems = check_well_formed(tracer.spans)
        assert any("unfinished" in p for p in problems)

    def test_orphan_detected(self):
        tracer, clock = make_tracer()
        span = tracer.start("s", "bench", parent=999)
        clock.advance(1.0)
        span.finish()
        problems = check_well_formed(tracer.spans)
        assert any("orphan" in p for p in problems)

    def test_end_before_start_detected(self):
        tracer, clock = make_tracer()
        span = tracer.start("s", "bench")
        clock.advance(1.0)
        span.finish()
        span.end = -1.0
        problems = check_well_formed(tracer.spans)
        assert any("precedes" in p for p in problems)

    def test_finish_order_violation_detected(self):
        tracer, clock = make_tracer()
        a = tracer.start("a", "bench")
        clock.advance(1.0)
        a.finish()
        b = tracer.start("b", "bench")
        clock.advance(1.0)
        b.finish()
        tracer.spans.reverse()
        problems = check_well_formed(tracer.spans)
        assert any("finish order" in p for p in problems)

    def test_nondetached_child_outliving_parent_detected(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "bench")
        child = tracer.start("child", "net.rpc", parent=root)
        clock.advance(1.0)
        root.finish()
        clock.advance(1.0)
        child.finish()
        problems = check_well_formed(tracer.spans)
        assert any("non-detached" in p for p in problems)

    def test_detached_child_outliving_parent_allowed(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "bench")
        child = tracer.start("child", "client.nfsiod", parent=root,
                             detached=True)
        clock.advance(1.0)
        root.finish()
        clock.advance(1.0)
        child.finish()
        assert check_well_formed(tracer.spans) == []

    def test_child_starting_outside_parent_detected(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "bench")
        clock.advance(1.0)
        root.finish()
        clock.advance(1.0)
        late = tracer.start("late", "net.rpc", parent=root,
                            detached=True)
        late.finish()
        problems = check_well_formed(tracer.spans)
        assert any("outside parent" in p for p in problems)

    def test_duplicate_id_detected(self):
        tracer, clock = make_tracer()
        a = tracer.start("a", "bench")
        clock.advance(1.0)
        a.finish()
        b = tracer.start("b", "bench")
        b.id = a.id
        b.finish()
        problems = check_well_formed(tracer.spans)
        assert any("duplicate" in p for p in problems)


class TestTraceEventExport:
    def _spans(self):
        tracer, clock = make_tracer()
        root = tracer.start("reader:f0", "bench")
        clock.advance(0.5)
        rpc = tracer.start("call:ReadRequest", "net.rpc", parent=root,
                           xid=7)
        clock.advance(0.25)
        rpc.finish(ok=True)
        clock.advance(0.25)
        root.finish()
        return tracer.spans

    def test_structure(self):
        payload = to_trace_events(self._spans())
        assert payload["otherData"]["generator"] == "repro.obs"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        by_name = {event["name"]: event for event in events}
        rpc = by_name["call:ReadRequest"]
        assert rpc["ts"] == 0.5e6
        assert rpc["dur"] == 0.25e6
        assert rpc["args"]["xid"] == 7
        assert rpc["args"]["parent_id"] == \
            by_name["reader:f0"]["args"]["span_id"]

    def test_tids_follow_layer_stack_order(self):
        payload = to_trace_events(self._spans())
        tids = {event["cat"]: event["tid"]
                for event in payload["traceEvents"]}
        # bench precedes net.rpc in LAYER_CATEGORIES, so its track
        # number is smaller — Perfetto renders the stack top-down.
        assert tids["bench"] < tids["net.rpc"]
        assert LAYER_CATEGORIES.index("bench") < \
            LAYER_CATEGORIES.index("net.rpc")

    def test_round_trip_is_lossless(self):
        spans = self._spans()
        back = loads_trace(dumps_trace(spans))
        assert [s.key() for s in back] == [s.key() for s in spans]

    def test_dumps_is_deterministic_and_valid_json(self):
        spans = self._spans()
        text = dumps_trace(spans)
        assert text == dumps_trace(spans)
        payload = json.loads(text)
        assert "traceEvents" in payload

    def test_export_import_export_is_byte_stable(self):
        text = dumps_trace(self._spans())
        assert dumps_trace(loads_trace(text)) == text
