"""Causal-provenance battery: lineage capture, export, root cause.

Five contracts:

* **Zero perturbation** — a provenance-enabled run is bit-identical to
  a disabled run, on both scheduler kernels, and the provenance
  artifact itself is byte-identical across kernels.
* **Export round trip** — any provenance graph survives a JSONL
  write/read byte-identically (property-based), and the Perfetto flow
  events carry per-export-unique flow ids.
* **Evidence chains** — ``diagnose --slowest`` decompositions tile the
  op's interval exactly: hop durations sum to the op's measured
  latency, and consecutive hops share boundaries.
* **Retry dedupe** — over lossy UDP every RPC transmission-attempt
  window closes at most once (dedupe by ``(xid, attempt)``), and only
  unambiguous first-attempt replies feed the RTT histogram (Karn).
* **Detector citations** — the ZCAV and TCQ detectors attach exact
  causal chains to their findings when provenance is available.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import run_nfs_once
from repro.diagnose import DiagnosisInputs, split_runs
from repro.diagnose.detectors.tcq import TcqReorderingDetector
from repro.diagnose.detectors.zcav import ZcavDetector
from repro.diagnose.rootcause import (explain_op, explain_slowest, find_op,
                                      render_chains, slowest_ops)
from repro.host.testbed import TestbedConfig
from repro.obs import observe
from repro.obs.provenance import (EDGE_KINDS, ProvEdge, ProvNote,
                                  dumps_provenance, flow_events,
                                  loads_provenance, to_dot)
from repro.sim import KERNELS, use_kernel

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

SCALE = 0.05
LOSSY = dict(loss_rate=0.02, seed=3)


def run_once(provenance: bool, kernel: str = "calendar",
             config: TestbedConfig = None, nreaders: int = 2):
    config = config or TestbedConfig(**LOSSY)
    with use_kernel(kernel):
        if provenance:
            with observe(provenance=True) as session:
                result = run_nfs_once(config, nreaders, scale=SCALE)
            return result, session
        return run_nfs_once(config, nreaders, scale=SCALE), None


@pytest.fixture(scope="module")
def lossy_session():
    """One provenance-enabled lossy-UDP run (shared: it is expensive)."""
    _result, session = run_once(provenance=True)
    return session


@pytest.fixture(scope="module")
def tcq_session():
    """A TCQ-contended SCSI run: drive firmware reorders under load."""
    config = TestbedConfig(drive="scsi", tagged_queueing=True, seed=1)
    _result, session = run_once(provenance=True, config=config,
                                nreaders=4)
    return session


def inputs_from(session) -> DiagnosisInputs:
    return DiagnosisInputs(runs=split_runs(session.spans),
                           provenance=session.prov_records)


# ---------------------------------------------------------------------------
# Zero perturbation


class TestZeroPerturbation:
    @pytest.mark.parametrize("kernel", list(KERNELS))
    def test_enabling_provenance_is_bit_identical(self, kernel):
        baseline = run_once(provenance=False, kernel=kernel)[0]
        enabled = run_once(provenance=True, kernel=kernel)[0]
        assert enabled == baseline

    def test_provenance_artifact_identical_across_kernels(self):
        exports = {}
        for kernel in KERNELS:
            _result, session = run_once(provenance=True, kernel=kernel)
            exports[kernel] = (session.provenance_jsonl(),
                               session.trace_json())
        assert exports["calendar"] == exports["heap"]


# ---------------------------------------------------------------------------
# Export round trip (property-based)


_args = st.dictionaries(
    st.sampled_from(["lba", "block", "write", "zone", "behind",
                     "closed", "elapsed_s"]),
    st.one_of(st.integers(-2**31, 2**31), st.booleans(),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=12)),
    max_size=4)

_edges = st.builds(
    ProvEdge, kind=st.sampled_from(EDGE_KINDS),
    src=st.integers(1, 2**40), dst=st.integers(1, 2**40),
    t=st.floats(0, 1e6, allow_nan=False), args=_args,
    run=st.integers(0, 64))

_notes = st.builds(
    ProvNote, node=st.integers(1, 2**40),
    t=st.floats(0, 1e6, allow_nan=False), args=_args,
    run=st.integers(0, 64))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(_edges, _notes), max_size=40))
    def test_jsonl_round_trip_byte_identical(self, records):
        text = dumps_provenance(records)
        reloaded = loads_provenance(text)
        assert dumps_provenance(reloaded) == text
        assert [r.key() for r in reloaded] == [r.key() for r in records]

    def test_real_graph_round_trips(self, lossy_session):
        text = lossy_session.provenance_jsonl()
        assert dumps_provenance(loads_provenance(text)) == text

    def test_loads_rejects_bad_header(self):
        with pytest.raises(ValueError):
            loads_provenance('{"format":"something-else","version":1,'
                             '"records":0}\n')

    def test_dot_export_renders(self, lossy_session):
        dot = to_dot(lossy_session.prov_records[:200],
                     lossy_session.spans)
        assert dot.startswith("digraph provenance")

    def test_flow_ids_unique_per_export(self, lossy_session):
        events = flow_events(lossy_session.prov_records,
                             lossy_session.spans)
        assert events, "a lossy provenance run must produce flow events"
        starts = [e["id"] for e in events if e["ph"] == "s"]
        assert len(starts) == len(set(starts))
        # Every "s" has its matching "f" with the same flow id.
        finishes = {e["id"] for e in events if e["ph"] == "f"}
        assert set(starts) == finishes

    def test_trace_json_embeds_flow_events(self, lossy_session):
        payload = json.loads(lossy_session.trace_json())
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert "provenance" in cats


# ---------------------------------------------------------------------------
# Evidence chains


class TestEvidenceChains:
    def test_hops_sum_to_op_latency(self, lossy_session):
        runs = split_runs(lossy_session.spans)
        chains = explain_slowest(runs, 5, lossy_session.prov_records)
        assert len(chains) == 5
        for chain in chains:
            assert chain.hops
            assert chain.hop_total == pytest.approx(chain.duration,
                                                    rel=1e-9, abs=1e-12)

    def test_hops_tile_the_interval(self, lossy_session):
        runs = split_runs(lossy_session.spans)
        for chain in explain_slowest(runs, 5,
                                     lossy_session.prov_records):
            assert chain.hops[0].start == chain.start
            assert chain.hops[-1].end == chain.end
            for left, right in zip(chain.hops, chain.hops[1:]):
                assert left.end == right.start

    def test_slowest_ranking_is_sorted_and_deterministic(
            self, lossy_session):
        runs = split_runs(lossy_session.spans)
        ranked = slowest_ops(runs, 10)
        durations = [span.duration for _run, span in ranked]
        assert durations == sorted(durations, reverse=True)
        assert ranked == slowest_ops(runs, 10)

    def test_explain_op_matches_slowest(self, lossy_session):
        runs = split_runs(lossy_session.spans)
        run_index, op = slowest_ops(runs, 1)[0]
        located = find_op(runs, op.id)
        assert located == (run_index, op)
        chain = explain_op(runs, run_index, op,
                           lossy_session.prov_records)
        assert chain.op_id == op.id
        rendered = chain.render()
        assert f"op #{op.id}" in rendered

    def test_chains_carry_provenance_annotations(self, lossy_session):
        # A 2 % lossy run must show retransmission evidence somewhere
        # in its slowest ops' chains.
        runs = split_runs(lossy_session.spans)
        chains = explain_slowest(runs, 10, lossy_session.prov_records)
        notes = [note for chain in chains for hop in chain.hops
                 for note in hop.notes]
        assert notes, "slow lossy ops must carry causal annotations"

    def test_render_chains_empty_input(self):
        assert "no ops" in render_chains([])

    def test_jsonable_is_deterministic(self, lossy_session):
        runs = split_runs(lossy_session.spans)
        chains = explain_slowest(runs, 3, lossy_session.prov_records)
        once = json.dumps([c.to_jsonable() for c in chains],
                          sort_keys=True)
        again = json.dumps([c.to_jsonable() for c in explain_slowest(
            runs, 3, lossy_session.prov_records)], sort_keys=True)
        assert once == again


# ---------------------------------------------------------------------------
# Satellite: retry/reply attempt-window dedupe over lossy UDP


class TestAttemptDedupe:
    def test_attempt_windows_close_exactly_once(self):
        config = TestbedConfig(loss_rate=0.05, seed=11)
        captured = {}

        from repro.bench import runner as bench_runner
        original = bench_runner.build_nfs_testbed

        def capture_build(cfg):
            testbed = original(cfg)
            captured["testbed"] = testbed
            return testbed

        bench_runner.build_nfs_testbed = capture_build
        try:
            with observe(trace=True, metrics=True) as session:
                run_nfs_once(config, 2, scale=SCALE)
        finally:
            bench_runner.build_nfs_testbed = original

        testbed = captured["testbed"]
        total_retransmits = sum(c.retransmitted
                                for c in testbed.rpc_clients)
        assert total_retransmits > 0, \
            "a 5% lossy run must retransmit, or the test proves nothing"
        sampled = 0
        for client in testbed.rpc_clients:
            log = client.attempt_log
            assert log, "traced lossy run must log attempt closes"
            keys = [(xid, attempt) for xid, attempt, _r, _e in log]
            assert len(keys) == len(set(keys)), \
                "an attempt window closed twice (latency double-count)"
            for xid, attempt, reason, elapsed in log:
                assert reason in ("reply", "superseded", "timeout")
                assert elapsed >= 0.0
            sampled += sum(1 for _x, attempt, reason, _e in log
                           if reason == "reply" and attempt == 0)
        # Karn's rule: the RTT histogram holds exactly the unambiguous
        # (first-attempt reply) windows — never the retried ones.
        hist = session.merged_metrics()["histograms"][
            "rpc.client.attempt_rtt_s"]
        assert hist["count"] == sampled

    def test_superseded_windows_precede_higher_attempts(self):
        config = TestbedConfig(loss_rate=0.05, seed=11)
        captured = {}
        from repro.bench import runner as bench_runner
        original = bench_runner.build_nfs_testbed

        def capture_build(cfg):
            testbed = original(cfg)
            captured["testbed"] = testbed
            return testbed

        bench_runner.build_nfs_testbed = capture_build
        try:
            with observe(trace=True) as _session:
                run_nfs_once(config, 2, scale=SCALE)
        finally:
            bench_runner.build_nfs_testbed = original
        for client in captured["testbed"].rpc_clients:
            last_attempt = {}
            for xid, attempt, reason, _e in client.attempt_log:
                previous = last_attempt.get(xid, -1)
                assert attempt == previous + 1, \
                    "attempt windows must close in order per xid"
                last_attempt[xid] = attempt


# ---------------------------------------------------------------------------
# Satellite: calendar-kernel pull gauges


class TestCalendarGauges:
    def test_calendar_kernel_exposes_churn_gauges(self):
        with use_kernel("calendar"):
            config = TestbedConfig(metrics=True, **LOSSY)
            result = run_nfs_once(config, 2, scale=SCALE)
        gauges = result.metrics["gauges"]
        for name in ("kernel.calendar.resizes",
                     "kernel.calendar.tombstones",
                     "kernel.calendar.freelist_depth"):
            assert name in gauges
        # A full NFS run schedules thousands of events, so the calendar
        # must have resized; tombstones only appear on cancel paths
        # (covered at the unit level below), so the gauge just reads 0.
        assert gauges["kernel.calendar.resizes"] > 0
        assert gauges["kernel.calendar.tombstones"] >= 0.0

    def test_heap_kernel_reports_zero(self):
        with use_kernel("heap"):
            config = TestbedConfig(metrics=True, **LOSSY)
            result = run_nfs_once(config, 2, scale=SCALE)
        gauges = result.metrics["gauges"]
        assert gauges["kernel.calendar.resizes"] == 0.0
        assert gauges["kernel.calendar.tombstones"] == 0.0
        assert gauges["kernel.calendar.freelist_depth"] == 0.0

    def test_counters_are_kernel_local_bookkeeping(self):
        from repro.sim.calendar import CalendarQueue
        queue = CalendarQueue()
        records = [queue.push(float(i), object()) for i in range(64)]
        resizes_after_growth = queue.resizes
        assert resizes_after_growth > 0
        for record in records[:40]:
            queue.cancel(record)
        assert queue.tombstones == 40
        assert queue.freelist_depth >= 0


# ---------------------------------------------------------------------------
# Detector citations


class TestDetectorCitations:
    def test_zcav_cite_attaches_zone_chains(self, tcq_session):
        # The disk-bound session: its slow ops actually reach the media
        # (the lossy session's tail stalls in RPC retries instead).
        detector = ZcavDetector()
        finding = detector.finding("warning", 0.2, "zone drift",
                                   {"metric": "disk.zone*.mb_s"})
        detector.cite(inputs_from(tcq_session), finding)
        chains = finding.evidence.get("causal_chains")
        assert chains, "zcav must cite ops ending in zoned media hops"
        for chain in chains:
            zone_notes = [note for hop in chain["hops"]
                          if hop["layer"] == "disk.mechanics"
                          for note in hop["notes"] if "zone" in note]
            assert zone_notes

    def test_tcq_cite_attaches_overtake_chains(self, tcq_session):
        detector = TcqReorderingDetector()
        finding = detector.finding("critical", 0.3, "tcq reordering",
                                   {"metric": "disk.reorder_fraction"})
        detector.cite(inputs_from(tcq_session), finding)
        chains = finding.evidence.get("causal_chains")
        assert chains, "tcq must cite ops the firmware visibly stalled"
        for chain in chains:
            tcq_notes = [note for hop in chain["hops"]
                         if hop["layer"] == "disk.tcq"
                         for note in hop["notes"]]
            assert any("stalled behind" in note or "overtaken" in note
                       for note in tcq_notes)

    def test_cite_without_provenance_is_a_noop(self, lossy_session):
        detector = ZcavDetector()
        finding = detector.finding("warning", 0.2, "zone drift", {})
        inputs = DiagnosisInputs(runs=split_runs(lossy_session.spans))
        detector.cite(inputs, finding)
        assert "causal_chains" not in finding.evidence

    def test_run_detectors_invokes_cite(self, tcq_session):
        from repro.diagnose.detectors import run_detectors
        inputs = inputs_from(tcq_session)
        # Synthesize the metrics the tcq detector needs to fire, so
        # the engine path (detect -> cite) is exercised end to end.
        inputs.snapshots = [{
            "gauges": {"disk.tcq_enabled": 1.0,
                       "disk.reorder_fraction": 0.3,
                       "disk.tcq_depth": 64.0},
            "histograms": {"disk.tcq_wait_s": {
                "count": 500, "sum": 1.0, "mean": 0.002,
                "min": 0.0, "max": 0.01}},
        }]
        findings = run_detectors(inputs,
                                 [TcqReorderingDetector()])
        assert findings
        assert findings[0].evidence.get("causal_chains")


class TestCliEndToEnd:
    """The user-facing loop: ``--provenance`` artifacts in, chains out."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        """fig6 at tiny scale with every provenance artifact enabled."""
        import io
        from contextlib import redirect_stdout

        from repro.cli import main

        root = tmp_path_factory.mktemp("provenance_cli")
        paths = {"trace": str(root / "t.json"),
                 "prov": str(root / "p.jsonl"),
                 "dot": str(root / "p.dot")}
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["fig6", "--runs", "1", "--scale", "0.015625",
                         "--trace", paths["trace"],
                         "--provenance", paths["prov"],
                         "--provenance-dot", paths["dot"]])
        assert code == 0
        out = buffer.getvalue()
        assert "provenance:" in out and "records ->" in out
        return paths

    def run_cli(self, argv):
        import io
        from contextlib import redirect_stdout

        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(argv)
        return code, buffer.getvalue()

    def test_artifacts_well_formed(self, artifacts):
        with open(artifacts["prov"]) as handle:
            records = loads_provenance(handle.read())
        assert records
        with open(artifacts["dot"]) as handle:
            assert handle.read().startswith("digraph provenance")

    def test_slowest_text_and_json(self, artifacts):
        argv = ["diagnose", "--trace", artifacts["trace"],
                "--provenance", artifacts["prov"], "--slowest", "3"]
        code, text = self.run_cli(argv)
        assert code == 0
        assert text.count("op #") >= 3
        code, out = self.run_cli(argv + ["--json"])
        assert code == 0
        chains = json.loads(out)
        assert len(chains) == 3
        for chain in chains:
            total = sum(hop["duration_s"] for hop in chain["hops"])
            assert total == pytest.approx(chain["duration_s"],
                                          rel=1e-9, abs=1e-12)
        # The verb is deterministic: same artifacts, same bytes.
        code, again = self.run_cli(argv + ["--json"])
        assert (code, again) == (0, out)

    def test_op_lookup_and_missing_op(self, artifacts):
        code, out = self.run_cli(
            ["diagnose", "--trace", artifacts["trace"],
             "--provenance", artifacts["prov"], "--slowest", "1",
             "--json"])
        assert code == 0
        op_id = json.loads(out)[0]["op"]
        code, text = self.run_cli(
            ["diagnose", "--trace", artifacts["trace"],
             "--provenance", artifacts["prov"], "--op", str(op_id)])
        assert code == 0
        assert f"op #{op_id}" in text
        code, _text = self.run_cli(
            ["diagnose", "--trace", artifacts["trace"],
             "--provenance", artifacts["prov"], "--op", "999999999"])
        assert code == 2

    def test_rootcause_flags_require_trace(self, capsys):
        import sys

        from repro.cli import main

        old = sys.stderr
        sys.stderr = io = __import__("io").StringIO()
        try:
            code = main(["diagnose", "--slowest", "3"])
        finally:
            sys.stderr = old
        assert code == 2
        assert "--trace" in io.getvalue()
