"""Unit tests for the paper's sequentiality heuristics (§6-7)."""

import pytest

from repro.readahead import (AlwaysReadAheadHeuristic, CursorHeuristic,
                             DefaultHeuristic, INITIAL_SEQCOUNT,
                             MAX_SEQCOUNT, ReadState, SLOWDOWN_WINDOW,
                             SlowDownHeuristic, clamp_seqcount,
                             make_heuristic, readahead_blocks)

BLOCK = 8 * 1024


def sequential_accesses(heuristic, state, nblocks, start=0):
    counts = []
    for index in range(nblocks):
        counts.append(heuristic.observe(
            state, (start + index) * BLOCK, BLOCK))
    return counts


class TestDefaultHeuristic:
    def test_sequential_accesses_increment(self):
        counts = sequential_accesses(DefaultHeuristic(), ReadState(), 5)
        assert counts == [2, 3, 4, 5, 6]

    def test_any_mismatch_resets_to_initial(self):
        heuristic, state = DefaultHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 10)
        count = heuristic.observe(state, 100 * BLOCK, BLOCK)
        assert count == INITIAL_SEQCOUNT

    def test_small_jitter_also_resets(self):
        """The paper's complaint: one slightly out-of-order request
        destroys the whole accumulated score."""
        heuristic, state = DefaultHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 10)
        # Next expected offset is 10*BLOCK; deliver 11*BLOCK (one early).
        assert heuristic.observe(state, 11 * BLOCK, BLOCK) == \
            INITIAL_SEQCOUNT

    def test_clamped_at_maximum(self):
        heuristic, state = DefaultHeuristic(), ReadState()
        counts = sequential_accesses(heuristic, state, 200)
        assert max(counts) == MAX_SEQCOUNT

    def test_zero_length_access_rejected(self):
        with pytest.raises(ValueError):
            DefaultHeuristic().observe(ReadState(), 0, 0)


class TestSlowDown:
    def test_rises_like_default(self):
        assert sequential_accesses(SlowDownHeuristic(), ReadState(), 4) \
            == sequential_accesses(DefaultHeuristic(), ReadState(), 4)

    def test_near_match_leaves_count_unchanged(self):
        heuristic, state = SlowDownHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 10)
        before = state.seq_count
        # 2 blocks past the expected offset: within the 64 KiB window.
        count = heuristic.observe(state, 12 * BLOCK, BLOCK)
        assert count == before

    def test_window_boundary_is_inclusive(self):
        heuristic, state = SlowDownHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 10)
        before = state.seq_count
        count = heuristic.observe(state, 10 * BLOCK + SLOWDOWN_WINDOW,
                                  BLOCK)
        assert count == before

    def test_far_jump_halves(self):
        heuristic, state = SlowDownHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 15)
        before = state.seq_count
        count = heuristic.observe(state, 1000 * BLOCK, BLOCK)
        assert count == before // 2

    def test_random_pattern_decays_to_zero(self):
        """'Repeatedly dividing seqCount in half will quickly chop it
        down to zero' (§6.2)."""
        heuristic, state = SlowDownHeuristic(), ReadState()
        sequential_accesses(heuristic, state, 100)
        offsets = [5000 * BLOCK, 9000 * BLOCK, 100 * BLOCK,
                   7777 * BLOCK, 3 * BLOCK, 60000 * BLOCK,
                   40000 * BLOCK, 20000 * BLOCK]
        for offset in offsets:
            count = heuristic.observe(state, offset, BLOCK)
        assert count == 0

    def test_reordered_sequential_stream_keeps_high_count(self):
        """The design goal: jitter-swapped requests don't hurt."""
        heuristic, state = SlowDownHeuristic(), ReadState()
        blocks = list(range(64))
        # Swap every 8th adjacent pair.
        for index in range(0, 64, 8):
            if index + 1 < 64:
                blocks[index], blocks[index + 1] = \
                    blocks[index + 1], blocks[index]
        final = 0
        for block in blocks:
            final = heuristic.observe(state, block * BLOCK, BLOCK)
        assert final > 30

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlowDownHeuristic(window=-1)
        with pytest.raises(ValueError):
            SlowDownHeuristic(divisor=1)


class TestAlways:
    def test_pinned_at_max(self):
        heuristic, state = AlwaysReadAheadHeuristic(), ReadState()
        assert heuristic.observe(state, 0, BLOCK) == MAX_SEQCOUNT
        assert heuristic.observe(state, 999 * BLOCK, BLOCK) == \
            MAX_SEQCOUNT


class TestCursor:
    def test_single_stream_matures_like_slowdown(self):
        """A fresh cursor earns nothing on its allocating access, then
        rises exactly as SlowDown does."""
        cursor_counts = sequential_accesses(
            CursorHeuristic(), ReadState(), 6)
        assert cursor_counts == [1, 2, 3, 4, 5, 6]

    def test_stride_pattern_gets_per_arm_counts(self):
        """The §7 scenario: 0, x, 1, x+1, ... must look sequential."""
        heuristic, state = CursorHeuristic(), ReadState()
        half = 1000 * BLOCK
        counts = []
        for index in range(20):
            counts.append(heuristic.observe(state, index * BLOCK, BLOCK))
            counts.append(heuristic.observe(state, half + index * BLOCK,
                                            BLOCK))
        # Both arms mature: late accesses carry high counts.
        assert min(counts[-4:]) >= 15
        assert len(state.cursors) == 2

    def test_many_arms_within_cursor_limit(self):
        heuristic, state = CursorHeuristic(cursor_limit=8), ReadState()
        arms = 8
        arm_span = 10_000 * BLOCK
        final = []
        for index in range(10):
            for arm in range(arms):
                final.append(heuristic.observe(
                    state, arm * arm_span + index * BLOCK, BLOCK))
        assert min(final[-arms:]) >= 8
        assert len(state.cursors) == arms

    def test_more_arms_than_cursors_recycles_lru(self):
        heuristic, state = CursorHeuristic(cursor_limit=2), ReadState()
        arm_span = 10_000 * BLOCK
        for index in range(10):
            for arm in range(4):
                count = heuristic.observe(
                    state, arm * arm_span + index * BLOCK, BLOCK,
                    now=float(index * 4 + arm))
        assert len(state.cursors) == 2
        # With constant recycling no arm can mature.
        assert count <= 2

    def test_random_pattern_never_grows(self):
        """'If the access pattern is truly random ... no extra
        read-ahead is performed' (§7)."""
        import random
        rng = random.Random(42)
        heuristic, state = CursorHeuristic(), ReadState()
        counts = []
        for step in range(200):
            offset = rng.randrange(1_000_000) * BLOCK
            counts.append(heuristic.observe(state, offset, BLOCK,
                                            now=float(step)))
        assert max(counts) <= 3

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CursorHeuristic(cursor_limit=0)
        with pytest.raises(ValueError):
            CursorHeuristic(divisor=0)


class TestHelpers:
    def test_clamp(self):
        assert clamp_seqcount(-5) == 0
        assert clamp_seqcount(5) == 5
        assert clamp_seqcount(9999) == MAX_SEQCOUNT

    def test_readahead_blocks_below_trigger(self):
        assert readahead_blocks(0, 16) == 0
        assert readahead_blocks(1, 16) == 0

    def test_readahead_blocks_grows_then_caps(self):
        assert readahead_blocks(2, 16) == 2
        assert readahead_blocks(10, 16) == 10
        assert readahead_blocks(127, 16) == 16

    def test_readahead_blocks_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            readahead_blocks(5, -1)

    def test_make_heuristic_by_name(self):
        assert make_heuristic("default").name == "default"
        assert make_heuristic("slowdown", window=1024).window == 1024
        assert make_heuristic("cursor", cursor_limit=3).cursor_limit == 3
        with pytest.raises(ValueError):
            make_heuristic("nope")
