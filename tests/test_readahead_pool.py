"""Unit tests for the shared cursor pool (the paper's §8 extension)."""

import pytest

from repro.readahead import (CursorHeuristic, ReadState,
                             SharedCursorPool)

BLOCK = 8 * 1024


class TestSingleFile:
    def test_sequential_stream_matures(self):
        pool = SharedCursorPool()
        state = ReadState()
        counts = [pool.observe(state, index * BLOCK, BLOCK, fh="f")
                  for index in range(10)]
        assert counts == list(range(1, 11))

    def test_stride_arms_each_get_a_cursor(self):
        pool = SharedCursorPool()
        arm_span = 10_000 * BLOCK
        state = ReadState()
        final = 0
        for index in range(10):
            for arm in range(12):
                final = pool.observe(
                    state, arm * arm_span + index * BLOCK, BLOCK,
                    now=float(index * 12 + arm), fh="f")
        # Twelve arms — beyond the per-file heuristic's default budget
        # of eight — all mature in the shared pool.
        assert len(pool.cursors_of("f")) == 12
        assert final >= 9

    def test_beats_per_file_cursor_limit(self):
        """The §8 motivation: more arms than the per-file budget."""
        arms = 16
        arm_span = 10_000 * BLOCK

        def run(heuristic, **kwargs):
            state = ReadState()
            counts = []
            step = 0
            for index in range(10):
                for arm in range(arms):
                    counts.append(heuristic.observe(
                        state, arm * arm_span + index * BLOCK, BLOCK,
                        now=float(step), **kwargs))
                    step += 1
            return counts[-arms:]

        pooled = run(SharedCursorPool(pool_size=64), fh="f")
        per_file = run(CursorHeuristic(cursor_limit=8))
        assert min(pooled) > 4 * max(per_file)


class TestCrossFile:
    def test_files_do_not_share_cursors(self):
        pool = SharedCursorPool()
        state_a, state_b = ReadState(), ReadState()
        for index in range(5):
            pool.observe(state_a, index * BLOCK, BLOCK, fh="a")
        # Same offsets, different file: must not match file a's cursor.
        count = pool.observe(state_b, 5 * BLOCK, BLOCK, fh="b")
        assert count == 1
        assert len(pool.cursors_of("a")) == 1
        assert len(pool.cursors_of("b")) == 1

    def test_idle_files_release_capacity(self):
        """Unlike per-handle reservations, idle files hold nothing."""
        pool = SharedCursorPool(pool_size=4)
        state = ReadState()
        for name in ("a", "b", "c", "d"):
            pool.observe(state, 0, BLOCK, now=0.0, fh=name)
        # A busy file can now claim every slot, evicting idle files LRU.
        for index in range(8):
            pool.observe(state, index * 100_000 * BLOCK, BLOCK,
                         now=1.0 + index, fh="busy")
        assert len(pool.cursors_of("busy")) == 4
        assert pool.stats.cross_file_recycles >= 4

    def test_pool_size_is_hard_cap(self):
        pool = SharedCursorPool(pool_size=8)
        state = ReadState()
        for index in range(100):
            pool.observe(state, index * 50_000 * BLOCK, BLOCK,
                         now=float(index), fh=f"file{index % 10}")
        assert len(pool.cursors) == 8


class TestValidationAndStats:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SharedCursorPool(pool_size=0)
        with pytest.raises(ValueError):
            SharedCursorPool(window=-1)
        with pytest.raises(ValueError):
            SharedCursorPool(divisor=1)

    def test_zero_length_access_rejected(self):
        with pytest.raises(ValueError):
            SharedCursorPool().observe(ReadState(), 0, 0, fh="f")

    def test_stats_accumulate(self):
        pool = SharedCursorPool(pool_size=2)
        state = ReadState()
        for index in range(4):
            pool.observe(state, index * 90_000 * BLOCK, BLOCK,
                         now=float(index), fh="f")
        assert pool.stats.observations == 4
        assert pool.stats.allocations == 4
        assert pool.stats.recycles == 2

    def test_state_mirroring_optional(self):
        pool = SharedCursorPool()
        assert pool.observe(None, 0, BLOCK, fh="f") == 1


class TestEndToEnd:
    def test_pooled_cursor_usable_as_server_heuristic(self):
        from repro.bench.runner import run_stride_once
        from repro.host import TestbedConfig

        pooled = run_stride_once(
            TestbedConfig(server_heuristic="pooled-cursor",
                          nfsheur="improved"), 8, scale=1 / 64)
        default = run_stride_once(
            TestbedConfig(server_heuristic="default"), 8, scale=1 / 64)
        assert pooled.throughput_mb_s > default.throughput_mb_s
