"""Property-based tests for the heuristics (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.readahead import (CursorHeuristic, DefaultHeuristic,
                             MAX_SEQCOUNT, ReadState, SlowDownHeuristic)

BLOCK = 8 * 1024

offsets = st.integers(min_value=0, max_value=2 ** 30)
access_lists = st.lists(offsets, min_size=1, max_size=300)


@given(access_lists)
@settings(max_examples=100, deadline=None)
def test_all_heuristics_keep_seqcount_in_bounds(accesses):
    for heuristic in (DefaultHeuristic(), SlowDownHeuristic(),
                      CursorHeuristic()):
        state = ReadState()
        for step, offset in enumerate(accesses):
            count = heuristic.observe(state, offset, BLOCK,
                                      now=float(step))
            assert 0 <= count <= MAX_SEQCOUNT


@given(access_lists)
@settings(max_examples=100, deadline=None)
def test_slowdown_never_below_default(accesses):
    """SlowDown is, pointwise, at least as optimistic as the default:
    it rises identically and falls no faster on any access stream."""
    slow_state, default_state = ReadState(), ReadState()
    slow, default = SlowDownHeuristic(), DefaultHeuristic()
    for offset in accesses:
        slow_count = slow.observe(slow_state, offset, BLOCK)
        default_count = default.observe(default_state, offset, BLOCK)
        assert slow_count >= min(default_count, slow_count)
        # The default only ever exceeds SlowDown right after a reset
        # bonus cannot happen: a sequential hit increments both equally.
        assert default_count <= slow_count or default_count == 1 or \
            default_count == slow_count


@given(st.integers(min_value=1, max_value=200))
@settings(max_examples=50, deadline=None)
def test_pure_sequential_counts_identical_across_heuristics(nblocks):
    results = []
    for heuristic in (DefaultHeuristic(), SlowDownHeuristic()):
        state = ReadState()
        counts = [heuristic.observe(state, index * BLOCK, BLOCK)
                  for index in range(nblocks)]
        results.append(counts)
    assert results[0] == results[1]
    # The cursor variant trails by exactly one step: its allocating
    # access earns no credit, after which it rises identically (both
    # saturate at MAX_SEQCOUNT).
    state = ReadState()
    cursor = CursorHeuristic()
    cursor_counts = [cursor.observe(state, index * BLOCK, BLOCK)
                     for index in range(nblocks)]
    assert cursor_counts == [min(index + 1, MAX_SEQCOUNT)
                             for index in range(nblocks)]


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=2, max_value=40))
@settings(max_examples=50, deadline=None)
def test_cursor_count_never_exceeds_limit(cursor_limit, rounds):
    heuristic = CursorHeuristic(cursor_limit=cursor_limit)
    state = ReadState()
    arm_span = 1_000_000 * BLOCK
    step = 0
    for round_index in range(rounds):
        for arm in range(12):
            heuristic.observe(state, arm * arm_span + round_index * BLOCK,
                              BLOCK, now=float(step))
            step += 1
    assert len(state.cursors) <= cursor_limit


@given(access_lists)
@settings(max_examples=50, deadline=None)
def test_observe_is_deterministic(accesses):
    def run():
        state = ReadState()
        heuristic = SlowDownHeuristic()
        return [heuristic.observe(state, offset, BLOCK)
                for offset in accesses]

    assert run() == run()
