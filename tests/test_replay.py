"""Tests for the trace capture & replay subsystem (repro.replay)."""

import json

import pytest

from repro.bench import run_nfs_once
from repro.faults import FaultSpec, ServerFaults
from repro.host import TestbedConfig
from repro.replay import (FORMAT_VERSION, TraceFormatError, TraceHeader,
                          capture_nfs_run, dumps_trace, loads_trace,
                          multiplex_trace, read_trace_file, replay_trace,
                          write_trace_file, zipf_weights)
from repro.replay.engine import CLOSED_LOOP, OPEN_LOOP
from repro.trace import OP_OPEN, OP_READ

SCALE = 1 / 64  # tiny files: tests must be fast

SOURCE = TestbedConfig(transport="udp", server_heuristic="default",
                       nfsheur="default", num_clients=2, seed=3)
TARGET = TestbedConfig(transport="tcp", server_heuristic="cursor",
                       nfsheur="improved", seed=3)


@pytest.fixture(scope="module")
def captured():
    return capture_nfs_run(SOURCE, nreaders=2, scale=SCALE)


class TestCapture:
    def test_capture_records_vnode_ops(self, captured):
        assert captured.ops > 0
        assert captured.header.clients == 2
        kinds = {record.op for record in captured.records}
        assert OP_OPEN in kinds and OP_READ in kinds
        # Two readers on two client machines: both clients appear.
        assert {record.client for record in captured.records} == {0, 1}

    def test_capture_covers_benchmark_bytes(self, captured):
        read = sum(record.count for record in captured.records
                   if record.op == OP_READ)
        assert read == sum(size for _, size in captured.header.fileset)

    def test_capture_does_not_perturb_the_run(self):
        from dataclasses import replace
        plain = run_nfs_once(SOURCE, 2, scale=SCALE)
        taped = run_nfs_once(replace(SOURCE, capture_trace=True), 2,
                             scale=SCALE)
        assert taped.throughput_mb_s == plain.throughput_mb_s
        assert plain.trace is None and taped.trace is not None

    def test_client_seq_is_per_client_program_order(self, captured):
        for client, records in captured.by_client().items():
            assert [r.client_seq for r in records] == \
                list(range(len(records)))


class TestFormat:
    def test_round_trip_is_byte_identical(self, captured):
        text = dumps_trace(captured)
        assert dumps_trace(loads_trace(text)) == text

    def test_file_round_trip(self, captured, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace_file(path, captured)
        again = read_trace_file(path)
        assert again.header == captured.header
        assert again.records == captured.records

    def test_header_is_first_line_and_self_describing(self, captured):
        first = json.loads(dumps_trace(captured).splitlines()[0])
        # A capture using only the v1 op vocabulary is written as
        # version 1 — byte-identical to the pre-namespace writer.
        assert first["version"] == 1
        assert first["block_size"] == SOURCE.rsize
        assert first["seed"] == SOURCE.seed
        assert first["config"]["transport"] == "udp"
        assert first["fileset"]

    def test_bad_inputs_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_trace("")
        with pytest.raises(TraceFormatError):
            loads_trace('{"format": "something-else", "version": 1}\n')
        header = json.dumps({"format": "repro-replay-trace",
                             "version": FORMAT_VERSION + 1})
        with pytest.raises(TraceFormatError):
            loads_trace(header + "\n")


class TestReplayEngine:
    def test_closed_loop_is_deterministic(self, captured):
        first = replay_trace(captured, TARGET, mode=CLOSED_LOOP)
        second = replay_trace(captured, TARGET, mode=CLOSED_LOOP)
        assert first.summary() == second.summary()
        assert first.ops_completed == captured.ops
        assert first.errors == 0

    def test_open_loop_is_deterministic(self, captured):
        first = replay_trace(captured, TARGET, mode=OPEN_LOOP)
        second = replay_trace(captured, TARGET, mode=OPEN_LOOP)
        assert first.summary() == second.summary()

    def test_cross_config_replay_moves_all_bytes(self, captured):
        result = replay_trace(captured, TARGET, mode=CLOSED_LOOP)
        assert result.total_bytes == captured.bytes_moved
        assert result.throughput_mb_s > 0

    def test_open_vs_closed_diverge_under_a_slow_server(self, captured):
        """The load models disagree exactly when the server lags.

        A stalling server delays closed-loop completion (the client
        waits), while the open-loop client keeps issuing on schedule
        and accumulates lateness — the backlog signature the paper's
        open-vs-closed discussion is about.
        """
        from dataclasses import replace
        slow = replace(
            TARGET,
            faults=FaultSpec(server=ServerFaults(
                stall_times=(0.01,), stall_duration=2.0)))
        closed = replay_trace(captured, slow, mode=CLOSED_LOOP)
        compressed = 20.0  # compress the schedule into the stall
        opened = replay_trace(captured, slow, mode=OPEN_LOOP,
                              time_scale=compressed)
        healthy = replay_trace(captured, TARGET, mode=OPEN_LOOP,
                               time_scale=compressed)
        assert closed.lateness_s == 0.0
        assert opened.lateness_s > healthy.lateness_s > 0.0
        # The stall dominates: most of the open-loop schedule lands
        # inside it, so the backlog integral is of order ops * stall.
        assert opened.lateness_s > 10 * healthy.lateness_s
        assert opened.ops_completed == closed.ops_completed

    def test_mode_and_scale_validated(self, captured):
        with pytest.raises(ValueError):
            replay_trace(captured, TARGET, mode="sideways")
        with pytest.raises(ValueError):
            replay_trace(captured, TARGET, time_scale=0.0)

    def test_offered_load_monotone_in_clients(self, captured):
        from dataclasses import replace
        target = replace(TARGET, metrics=True)
        offered = []
        for clients in (2, 4, 8):
            result = replay_trace(captured, target, clients=clients)
            gauges = result.metrics["gauges"]
            assert gauges["replay.clients"] == float(clients)
            offered.append((gauges["replay.offered_ops"],
                            gauges["replay.offered_ops_s"]))
        ops, rates = zip(*offered)
        assert list(ops) == sorted(ops) and ops[0] < ops[-1]
        assert list(rates) == sorted(rates) and rates[0] < rates[-1]

    def test_offered_rate_monotone_in_time_scale(self, captured):
        from dataclasses import replace
        target = replace(TARGET, metrics=True)
        rates = []
        for time_scale in (1.0, 2.0, 4.0):
            result = replay_trace(captured, target, mode=OPEN_LOOP,
                                  time_scale=time_scale)
            rates.append(result.metrics["gauges"]["replay.offered_ops_s"])
        assert rates == sorted(rates) and rates[0] < rates[-1]

    def test_replayed_ops_counted_in_registry(self, captured):
        from dataclasses import replace
        result = replay_trace(captured, replace(TARGET, metrics=True))
        gauges = result.metrics["gauges"]
        assert gauges["replay.completed_ops"] == float(captured.ops)
        assert gauges["replay.lateness_s"] == 0.0


class TestScaling:
    def test_identity_when_client_count_matches(self, captured):
        """Scaling to the captured client count changes no program."""
        same = multiplex_trace(captured, captured.header.clients, seed=9)
        for client, records in captured.by_client().items():
            cloned = same.by_client()[client]
            assert [(r.time, r.op, r.path, r.offset, r.count)
                    for r in cloned] == \
                [(r.time, r.op, r.path, r.offset, r.count)
                 for r in records]

    def test_scaled_trace_is_deterministic(self, captured):
        first = multiplex_trace(captured, 6, seed=9)
        second = multiplex_trace(captured, 6, seed=9)
        assert first.records == second.records
        assert first.records != multiplex_trace(captured, 6,
                                                seed=10).records

    def test_clones_stay_inside_the_fileset(self, captured):
        scaled = multiplex_trace(captured, 8, seed=9)
        sizes = scaled.header.file_sizes()
        for record in scaled.records:
            assert record.path in sizes
            if record.op != OP_OPEN:
                assert 0 <= record.offset < sizes[record.path]
                assert record.offset + record.count <= sizes[record.path]

    def test_scaled_header_records_provenance(self, captured):
        scaled = multiplex_trace(captured, 5, seed=9)
        config = scaled.header.config_dict()
        assert scaled.header.clients == 5
        assert config["scaled_from_clients"] == captured.header.clients
        assert config["scale_seed"] == 9

    def test_zipf_weights_shape(self):
        weights = zipf_weights(5, s=1.0)
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestHeaderValidation:
    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            TraceHeader.from_parts(block_size=0, fileset=[("f", 1)],
                                   seed=0, clients=1, config={})
        with pytest.raises(ValueError):
            TraceHeader.from_parts(block_size=8192, fileset=[("f", 1)],
                                   seed=0, clients=0, config={})
