"""Unit tests for the event queue and event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout
from repro.sim.events import EventQueue


class TestEvent:
    def test_starts_pending(self):
        sim = Simulator()
        event = sim.event("e")
        assert not event.triggered
        assert not event.processed

    def test_succeed_marks_triggered(self):
        sim = Simulator()
        event = sim.event().succeed(42)
        assert event.triggered
        assert not event.processed
        sim.run()
        assert event.processed
        assert event.value == 42

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_callback_runs_on_processing(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        event.add_callback(lambda ev: seen.append(ev.value))
        event.succeed("x")
        assert seen == []
        sim.run()
        assert seen == ["x"]

    def test_late_callback_runs_immediately(self):
        sim = Simulator()
        event = sim.event().succeed("done")
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == ["done"]

    def test_succeed_with_delay(self):
        sim = Simulator()
        times = []
        event = sim.event()
        event.add_callback(lambda ev: times.append(sim.now))
        event.succeed(delay=2.5)
        sim.run()
        assert times == [2.5]


class TestEventFail:
    def test_fail_throws_into_waiting_process(self):
        sim = Simulator()
        event = sim.event("doomed")
        caught = []

        def waiter(sim):
            try:
                yield event
            except ValueError as exc:
                caught.append(exc)
            return None

        sim.spawn(waiter(sim))
        event.fail(ValueError("boom"), delay=1.0)
        sim.run()
        assert len(caught) == 1
        assert sim.now == 1.0

    def test_uncaught_failure_kills_the_process(self):
        sim = Simulator()
        event = sim.event()

        def waiter(sim):
            yield event

        process = sim.spawn(waiter(sim))
        event.fail(RuntimeError("no handler"))
        sim.run()
        assert isinstance(process.error, RuntimeError)

    def test_fail_needs_an_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_fail_is_one_shot(self):
        sim = Simulator()
        event = sim.event().succeed()
        with pytest.raises(RuntimeError):
            event.fail(ValueError("late"))

    def test_plain_callbacks_see_the_error(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.error))
        event.fail(KeyError("k"))
        sim.run()
        assert len(seen) == 1 and isinstance(seen[0], KeyError)

    def test_child_process_error_propagates_to_parent(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1.0)
            raise OSError("child died")

        caught = []

        def parent(sim):
            try:
                yield sim.spawn(child(sim))
            except OSError as exc:
                caught.append(exc)
            return "recovered"

        process = sim.spawn(parent(sim))
        assert sim.run_until_complete(process) == "recovered"
        assert len(caught) == 1


class TestTimeout:
    def test_fires_at_delay(self):
        sim = Simulator()
        fired = []
        timeout = sim.timeout(1.25, value="t")
        timeout.add_callback(lambda ev: fired.append((sim.now, ev.value)))
        sim.run()
        assert fired == [(1.25, "t")]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_zero_delay_fires_now(self):
        sim = Simulator()
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0


class TestAnyOfAllOf:
    def test_any_of_fires_on_first(self):
        sim = Simulator()
        slow = sim.timeout(5.0)
        fast = sim.timeout(1.0)
        gate = sim.any_of([slow, fast])
        winners = []
        gate.add_callback(lambda ev: winners.append((sim.now, ev.value)))
        sim.run()
        assert winners == [(1.0, fast)]

    def test_all_of_waits_for_all(self):
        sim = Simulator()
        events = [sim.timeout(t) for t in (3.0, 1.0, 2.0)]
        gate = sim.all_of(events)
        done = []
        gate.add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [3.0]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        gate = sim.all_of([])
        sim.run()
        assert gate.processed

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.any_of([])


class TestEventQueue:
    def test_orders_by_time(self):
        sim = Simulator()
        queue = EventQueue()
        order = []
        for t in (3.0, 1.0, 2.0):
            queue.push(t, sim.event(str(t)))
        while len(queue):
            when, event = queue.pop()
            order.append(when)
        assert order == [1.0, 2.0, 3.0]

    def test_fifo_among_ties(self):
        sim = Simulator()
        queue = EventQueue()
        first = sim.event("first")
        second = sim.event("second")
        queue.push(1.0, first)
        queue.push(1.0, second)
        assert queue.pop()[1] is first
        assert queue.pop()[1] is second

    def test_peek_time(self):
        queue = EventQueue()
        sim = Simulator()
        queue.push(4.0, sim.event())
        queue.push(2.0, sim.event())
        assert queue.peek_time() == 2.0
