"""Unit tests for generator-based processes."""

import pytest

from repro.sim import (Interrupt, Process, ProcessError, SimulationError,
                       Simulator)


def test_process_runs_and_returns_value():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(0.5)
        return "result"

    process = sim.spawn(worker(sim))
    assert sim.run_until_complete(process) == "result"
    assert sim.now == 1.5


def test_process_is_waitable_event():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 7

    def parent(sim):
        value = yield sim.spawn(child(sim))
        return value * 2

    process = sim.spawn(parent(sim))
    assert sim.run_until_complete(process) == 14


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(ProcessError):
        Process(sim, lambda: None)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    process = sim.spawn(bad(sim))
    with pytest.raises(ProcessError):
        sim.run_until_complete(process)


def test_exception_propagates_via_run_until_complete():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaboom")

    process = sim.spawn(boom(sim))
    with pytest.raises(ValueError, match="kaboom"):
        sim.run_until_complete(process)


def test_interrupt_is_catchable():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append(interrupt.cause)
            yield sim.timeout(1.0)
        return "recovered"

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")
        return None

    victim = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, victim))
    assert sim.run_until_complete(victim) == "recovered"
    assert log == ["wake up"]
    assert sim.now == 3.0


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.1)

    process = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(ProcessError):
        process.interrupt()


def test_deadlock_detected():
    sim = Simulator()

    def stuck(sim):
        yield sim.event("never")

    process = sim.spawn(stuck(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(process)


def test_run_until_time_limit():
    sim = Simulator()

    def ticker(sim):
        for _ in range(100):
            yield sim.timeout(1.0)

    sim.spawn(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5
