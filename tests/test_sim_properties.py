"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.events import EventQueue


@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    sim = Simulator()
    queue = EventQueue()
    for t in times:
        queue.push(t, sim.event())
    popped = []
    while len(queue):
        popped.append(queue.pop()[0])
    assert popped == sorted(popped)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_clock_never_runs_backwards(delays):
    sim = Simulator()
    observed = []

    def waiter(sim, delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.spawn(waiter(sim, delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert sim.now == max(delays)


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=40))
@settings(max_examples=30, deadline=None)
def test_resource_never_exceeds_capacity(capacity, nworkers):
    from repro.sim import Resource

    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    concurrency = {"now": 0, "peak": 0}

    def worker(sim):
        yield resource.acquire()
        concurrency["now"] += 1
        concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
        yield sim.timeout(1.0)
        concurrency["now"] -= 1
        resource.release()

    for _ in range(nworkers):
        sim.spawn(worker(sim))
    sim.run()
    assert concurrency["peak"] <= capacity
    assert concurrency["now"] == 0
    assert resource.in_use == 0


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=60),
       st.floats(min_value=1.0, max_value=1e9))
@settings(max_examples=50, deadline=None)
def test_rate_limiter_total_time_is_sum_of_parts(sizes, rate):
    from repro.sim import RateLimiter

    sim = Simulator()
    limiter = RateLimiter(sim, rate)
    for size in sizes:
        limiter.transfer(size)
    sim.run()
    expected = sum(sizes) / rate
    assert sim.now <= expected * (1 + 1e-9) + 1e-12
    assert limiter.bytes_moved == sum(sizes)
