"""Unit tests for deterministic random streams."""

from repro.sim import RandomStreams, derive_seed


def test_same_name_same_stream_object():
    streams = RandomStreams(7)
    assert streams.stream("a") is streams.stream("a")


def test_streams_reproducible_across_instances():
    first = RandomStreams(42).stream("disk").random()
    second = RandomStreams(42).stream("disk").random()
    assert first == second


def test_different_names_differ():
    streams = RandomStreams(42)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_different_master_seeds_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_derive_seed_is_stable_and_64bit():
    seed = derive_seed(123, "stream")
    assert seed == derive_seed(123, "stream")
    assert 0 <= seed < 2 ** 64


def test_fork_is_independent_of_parent_draws():
    parent = RandomStreams(5)
    fork_a = parent.fork("child").stream("s").random()
    parent.stream("s").random()  # draw from the parent
    fork_b = RandomStreams(5).fork("child").stream("s").random()
    assert fork_a == fork_b
