"""Unit tests for Resource, Store, and RateLimiter."""

import pytest

from repro.sim import RateLimiter, Resource, Simulator, Store


class TestResource:
    def test_capacity_enforced_fifo(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(sim, name, hold):
            yield resource.acquire()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.spawn(worker(sim, "a", 2.0))
        sim.spawn(worker(sim, "b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_try_acquire(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        assert resource.try_acquire()
        assert resource.try_acquire()
        assert not resource.try_acquire()
        resource.release()
        assert resource.try_acquire()

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_bad_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_queued_counts_waiters(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        assert resource.try_acquire()
        resource.acquire()
        resource.acquire()
        assert resource.queued == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def getter(sim):
            item = yield store.get()
            got.append((item, sim.now))

        sim.spawn(getter(sim))
        sim.run()
        assert got == [("x", 0.0)]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim):
            item = yield store.get()
            got.append((item, sim.now))

        def putter(sim):
            yield sim.timeout(3.0)
            store.put("late")

        sim.spawn(getter(sim))
        sim.spawn(putter(sim))
        sim.run()
        assert got == [("late", 3.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        sim.spawn(getter(sim, "first"))
        sim.spawn(getter(sim, "second"))
        store.put(1)
        store.put(2)
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_len_counts_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert len(store) == 2


class TestRateLimiter:
    def test_single_transfer_duration(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate_bytes_per_sec=1000.0)
        done = []

        def mover(sim):
            yield limiter.transfer(500)
            done.append(sim.now)

        sim.spawn(mover(sim))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_transfers_serialize(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate_bytes_per_sec=1000.0)
        done = []

        def mover(sim, tag):
            yield limiter.transfer(1000)
            done.append((tag, sim.now))

        sim.spawn(mover(sim, "a"))
        sim.spawn(mover(sim, "b"))
        sim.run()
        assert done == [("a", pytest.approx(1.0)),
                        ("b", pytest.approx(2.0))]

    def test_idle_gap_not_credited(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate_bytes_per_sec=1000.0)
        done = []

        def mover(sim):
            yield sim.timeout(10.0)
            yield limiter.transfer(1000)
            done.append(sim.now)

        sim.spawn(mover(sim))
        sim.run()
        assert done == [pytest.approx(11.0)]

    def test_overhead_applied_per_transfer(self):
        sim = Simulator()
        limiter = RateLimiter(sim, 1000.0, per_transfer_overhead=0.25)
        done = []

        def mover(sim):
            yield limiter.transfer(1000)
            done.append(sim.now)

        sim.spawn(mover(sim))
        sim.run()
        assert done == [pytest.approx(1.25)]

    def test_bad_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RateLimiter(sim, 0.0)

    def test_negative_transfer_rejected(self):
        sim = Simulator()
        limiter = RateLimiter(sim, 1000.0)
        with pytest.raises(ValueError):
            limiter.transfer(-1)

    def test_bytes_moved_accumulates(self):
        sim = Simulator()
        limiter = RateLimiter(sim, 1000.0)
        limiter.transfer(100)
        limiter.transfer(200)
        assert limiter.bytes_moved == 300
