"""Unit and property tests for the statistics helpers."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import RunningSummary, Series, SeriesSet, summarize


class TestRunningSummary:
    def test_known_values(self):
        summary = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.mean == pytest.approx(5.0)
        assert summary.count == 8
        assert summary.minimum == 2.0
        assert summary.maximum == 9.0

    def test_single_value_has_zero_std(self):
        summary = summarize([3.5])
        assert summary.std == 0.0
        assert summary.mean == 3.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_relative_std(self):
        summary = summarize([10.0, 10.0, 10.0])
        assert summary.relative_std == 0.0

    def test_ci95_scales_with_count(self):
        narrow = summarize([1.0, 2.0, 3.0] * 30)
        wide = summarize([1.0, 2.0, 3.0])
        assert narrow.ci95() < wide.ci95()

    def test_str_formats_mean_and_std(self):
        summary = summarize([7.66, 7.66])
        assert str(summary) == "7.66 (0.00)"

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_statistics_module(self, values):
        summary = summarize(values)
        assert summary.mean == pytest.approx(statistics.fmean(values),
                                             rel=1e-9, abs=1e-6)
        assert summary.std == pytest.approx(statistics.stdev(values),
                                            rel=1e-6, abs=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False), min_size=1, max_size=50))
    def test_min_le_mean_le_max(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.mean + 1e-9
        assert summary.mean <= summary.maximum + 1e-9


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("ide1")
        series.add(1, summarize([10.0]))
        series.add(2, summarize([12.0]))
        assert series.at(2).mean == 12.0
        assert series.xs == [1, 2]
        assert series.means == [10.0, 12.0]

    def test_missing_point_raises(self):
        series = Series("x")
        with pytest.raises(KeyError):
            series.at(99)


class TestSeriesSet:
    def build(self):
        figure = SeriesSet("Fig X", xlabel="readers")
        a = figure.new_series("a")
        a.add(1, summarize([10.0, 11.0]))
        a.add(2, summarize([8.0]))
        b = figure.new_series("b")
        b.add(1, summarize([5.0]))
        return figure

    def test_labels(self):
        assert self.build().labels == ["a", "b"]

    def test_get_by_label(self):
        figure = self.build()
        assert figure.get("a").at(1).count == 2
        with pytest.raises(KeyError):
            figure.get("zzz")

    def test_render_contains_all_cells(self):
        text = self.build().render()
        assert "Fig X" in text
        assert "readers" in text
        assert "10.50" in text
        assert "8.00" in text
        assert "-" in text  # the missing b@2 cell

    def test_render_without_std(self):
        text = self.build().render(show_std=False)
        assert "(" not in text.replace("(MB/s)", "")

    def test_render_aligns_columns(self):
        lines = self.build().render().splitlines()
        header = lines[2]
        assert header.startswith("readers")
