"""Unit tests for trace generation and reordering metrics."""

import random

import pytest

from repro.readahead import (CursorHeuristic, DefaultHeuristic,
                             SlowDownHeuristic)
from repro.trace import (TraceRecord, mean_seqcount,
                         offset_backjump_fraction, random_trace,
                         reorder_fraction, sequential_trace,
                         sequentiality_profile, stride_trace)

BLOCK = 8 * 1024


class TestGeneration:
    def test_sequential_trace_in_order(self):
        trace = sequential_trace("fh", 100)
        assert [record.offset for record in trace] == \
            [index * BLOCK for index in range(100)]
        assert reorder_fraction(trace) == 0.0

    def test_reordered_trace_has_inversions(self):
        trace = sequential_trace("fh", 1000, reorder_probability=0.3,
                                 rng=random.Random(1))
        assert reorder_fraction(trace) > 0.05
        # It is still a permutation: every block exactly once.
        assert sorted(record.offset for record in trace) == \
            [index * BLOCK for index in range(1000)]

    def test_displacement_is_bounded(self):
        trace = sequential_trace("fh", 500, reorder_probability=0.5,
                                 max_displacement=3,
                                 rng=random.Random(2))
        for position, record in enumerate(trace):
            assert abs(record.client_seq - position) <= 3

    def test_stride_trace_pattern(self):
        trace = stride_trace("fh", nblocks=8, strides=2)
        offsets = [record.offset // BLOCK for record in trace]
        assert offsets == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_random_trace_within_file(self):
        trace = random_trace("fh", nblocks=50, rng=random.Random(3))
        assert all(0 <= record.offset < 50 * BLOCK for record in trace)

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(time=0.0, fh="f", offset=-1, count=1,
                        client_seq=0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            sequential_trace("fh", 10, reorder_probability=2.0)
        with pytest.raises(ValueError):
            stride_trace("fh", 10, strides=0)


class TestMetrics:
    def test_reorder_fraction_counts_per_handle(self):
        records = [
            TraceRecord(0.0, "a", 0 * BLOCK, BLOCK, 0),
            TraceRecord(0.1, "b", 0 * BLOCK, BLOCK, 0),
            TraceRecord(0.2, "a", 2 * BLOCK, BLOCK, 2),
            TraceRecord(0.3, "a", 1 * BLOCK, BLOCK, 1),  # inverted
        ]
        assert reorder_fraction(records) == pytest.approx(0.5)

    def test_backjump_fraction(self):
        trace = stride_trace("fh", nblocks=16, strides=2)
        # Every other adjacent pair jumps back to the first arm.
        assert offset_backjump_fraction(trace) == pytest.approx(
            7 / 15, rel=0.01)

    def test_empty_trace_metrics(self):
        assert reorder_fraction([]) == 0.0
        assert offset_backjump_fraction([]) == 0.0

    def test_profile_length_matches_trace(self):
        trace = sequential_trace("fh", 64)
        profile = sequentiality_profile(trace, DefaultHeuristic())
        assert len(profile) == 64

    def test_slowdown_beats_default_on_reordered_stream(self):
        """The paper's motivating comparison, §6.2."""
        trace = sequential_trace("fh", 2000, reorder_probability=0.10,
                                 rng=random.Random(4))
        slow = mean_seqcount(trace, SlowDownHeuristic())
        default = mean_seqcount(trace, DefaultHeuristic())
        assert slow > 2 * default

    def test_cursor_beats_both_on_stride_stream(self):
        """The §7 comparison: only cursors see stride sequentiality."""
        trace = stride_trace("fh", nblocks=4096, strides=4)
        cursor = mean_seqcount(trace, CursorHeuristic())
        slow = mean_seqcount(trace, SlowDownHeuristic())
        default = mean_seqcount(trace, DefaultHeuristic())
        assert cursor > 10 * max(slow, default)

    def test_random_stream_defeats_everything(self):
        trace = random_trace("fh", nblocks=100_000, accesses=2000,
                             rng=random.Random(5))
        for heuristic in (DefaultHeuristic(), SlowDownHeuristic(),
                          CursorHeuristic()):
            assert mean_seqcount(trace, heuristic) < 3.0


class TestRngThreading:
    """Every generator draws from an explicit, non-aliased stream."""

    def test_default_streams_are_fresh_per_call(self):
        # A module-default Random would advance across calls; each call
        # must instead rebuild its stream and give identical output.
        first = sequential_trace("fh", 200, reorder_probability=0.3)
        second = sequential_trace("fh", 200, reorder_probability=0.3)
        assert first == second
        assert random_trace("fh", 1000, 100) == \
            random_trace("fh", 1000, 100)
        assert stride_trace("fh", 64, 4, arrival_jitter=0.1) == \
            stride_trace("fh", 64, 4, arrival_jitter=0.1)

    def test_default_streams_do_not_alias_each_other(self):
        from repro.trace import default_rng
        draws = {name: default_rng(name).random()
                 for name in ("sequential", "random", "stride")}
        assert len(set(draws.values())) == 3

    def test_explicit_rng_is_honoured(self):
        with_five = random_trace("fh", 1000, 100, rng=random.Random(5))
        again = random_trace("fh", 1000, 100, rng=random.Random(5))
        other = random_trace("fh", 1000, 100, rng=random.Random(6))
        assert with_five == again
        assert with_five != other

    def test_jitter_free_stride_draws_nothing(self):
        # arrival_jitter=0 must not consume the stream (and stays on
        # the exact seq * inter_arrival grid).
        rng = random.Random(7)
        trace = stride_trace("fh", 64, 4, rng=rng)
        assert rng.random() == random.Random(7).random()
        assert [r.time for r in trace] == \
            [pytest.approx(seq * 0.0005) for seq in range(64)]
