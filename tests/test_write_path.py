"""Unit and integration tests for the write path (§8 extension)."""

import pytest

from repro.disk import DiskRequest, Partition, WDC_WD200BB
from repro.ffs import FileSystem, SequentialAllocator
from repro.host import TestbedConfig, build_nfs_testbed
from repro.kernel import BufferCache, DiskIoScheduler
from repro.sim import Simulator

BLOCK = 8 * 1024
MB = 1 << 20


def build_cache(capacity_bytes=8 << 20):
    sim = Simulator()
    drive = WDC_WD200BB.build(sim)
    iosched = DiskIoScheduler(sim, drive)
    cache = BufferCache(sim, iosched, capacity_bytes=capacity_bytes)
    return sim, drive, cache


class TestDriveWrites:
    def test_write_request_is_mechanical(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        request = DiskRequest(lba=100_000, nsectors=128, is_write=True)
        drive.submit(request)
        sim.run()
        assert drive.stats.writes == 1
        assert request.completion > 0

    def test_write_does_not_prefetch(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        drive.submit(DiskRequest(lba=0, nsectors=16, is_write=True))
        sim.run()
        assert drive.cache.segments == []

    def test_write_moves_head(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        far = drive.geometry.total_sectors // 2
        drive.submit(DiskRequest(lba=far, nsectors=16, is_write=True))
        sim.run()
        assert drive.current_cylinder > 0


class TestBufferCacheWrites:
    def test_write_is_immediate_and_dirty(self):
        sim, drive, cache = build_cache()
        cache.write(0, 4)
        assert cache.dirty_blocks == 4
        assert 0 in cache            # written data is readable
        assert drive.stats.writes == 0   # nothing on disk yet

    def test_threshold_triggers_writeback(self):
        sim, drive, cache = build_cache()
        cache.writeback_threshold = 8
        cache.write(0, 8)
        sim.run()
        assert cache.dirty_blocks == 0
        assert drive.stats.writes >= 1

    def test_sync_flushes_everything(self):
        sim, drive, cache = build_cache()
        cache.write(10, 3)
        cache.write(100, 2)

        def syncer(sim):
            yield cache.sync()

        sim.run_until_complete(sim.spawn(syncer(sim)))
        assert cache.dirty_blocks == 0
        assert drive.stats.writes == 2  # two contiguous runs

    def test_contiguous_dirty_runs_coalesce(self):
        sim, drive, cache = build_cache()
        cache.write(0, 4)
        cache.write(4, 4)
        cache.writeback()
        sim.run()
        assert cache.stats.disk_writes_issued == 1

    def test_dirty_blocks_never_evicted(self):
        sim, drive, cache = build_cache(capacity_bytes=4 * BLOCK)
        cache.write(0, 4)
        cache.write(100, 4)   # over capacity, but all dirty
        assert all(blkno in cache for blkno in (0, 1, 2, 3))

    def test_flush_keeps_dirty(self):
        sim, drive, cache = build_cache()
        cache.write(0, 2)
        cache.flush()
        assert 0 in cache
        assert cache.dirty_blocks == 2

    def test_zero_block_write_rejected(self):
        sim, drive, cache = build_cache()
        with pytest.raises(ValueError):
            cache.write(0, 0)

    def test_read_after_write_hits(self):
        sim, drive, cache = build_cache()
        cache.write(5, 2)

        def reader(sim):
            yield cache.read(5, 2)

        sim.run_until_complete(sim.spawn(reader(sim)))
        assert cache.stats.hits == 2


class TestFfsWrites:
    def build_fs(self):
        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        iosched = DiskIoScheduler(sim, drive)
        cache = BufferCache(sim, iosched, capacity_bytes=8 << 20)
        allocator = SequentialAllocator(
            Partition("p1", first_lba=0, sectors=1_000_000))
        return sim, drive, cache, FileSystem(sim, cache, allocator)

    def test_write_returns_bytes(self):
        sim, drive, cache, fs = self.build_fs()
        inode = fs.create_file("f", 10 * BLOCK)

        def writer(sim):
            got = yield from fs.write(inode, 0, 4 * BLOCK)
            return got

        assert sim.run_until_complete(sim.spawn(writer(sim))) == \
            4 * BLOCK
        assert cache.stats.blocks_written == 4

    def test_write_clamped_at_size(self):
        sim, drive, cache, fs = self.build_fs()
        inode = fs.create_file("f", 2 * BLOCK)

        def writer(sim):
            got = yield from fs.write(inode, BLOCK, 10 * BLOCK)
            return got

        assert sim.run_until_complete(sim.spawn(writer(sim))) == BLOCK

    def test_sync_reaches_disk(self):
        sim, drive, cache, fs = self.build_fs()
        inode = fs.create_file("f", 8 * BLOCK)

        def writer(sim):
            yield from fs.write(inode, 0, 8 * BLOCK)
            yield from fs.sync()

        sim.run_until_complete(sim.spawn(writer(sim)))
        assert drive.stats.writes >= 1


class TestNfsWrites:
    def test_write_commit_read_round_trip(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", MB)

        def worker(sim):
            nfile = yield from testbed.mount.open("data")
            wrote = yield from testbed.mount.write(nfile, 0, MB)
            yield from testbed.mount.commit(nfile)
            read = yield from testbed.mount.read(nfile, 0, 64 * 1024)
            return wrote, read

        wrote, read = testbed.sim.run_until_complete(
            testbed.sim.spawn(worker(testbed.sim)))
        assert wrote == MB
        assert read == 64 * 1024
        assert testbed.server.stats.writes == MB // BLOCK
        assert testbed.server.stats.commits == 1
        assert testbed.drive.stats.writes >= 1

    def test_stable_write_hits_disk_before_reply(self):
        testbed = build_nfs_testbed(TestbedConfig())
        from repro.nfs import WriteRequest
        testbed.server.export_file("data", 4 * BLOCK)
        fh = testbed.server.fh_of("data")

        def handler_call(sim):
            reply, _nbytes = yield from testbed.server.handle(
                WriteRequest(fh=fh, offset=0, count=BLOCK, stable=True))
            return reply

        testbed.sim.run_until_complete(
            testbed.sim.spawn(handler_call(testbed.sim)))
        assert testbed.drive.stats.writes >= 1
        assert testbed.cache.dirty_blocks == 0

    def test_getattr_round_trip(self):
        testbed = build_nfs_testbed(TestbedConfig())
        testbed.server.export_file("data", 3 * BLOCK)

        def worker(sim):
            nfile = yield from testbed.mount.open("data")
            size = yield from testbed.mount.getattr(nfile)
            return size

        assert testbed.sim.run_until_complete(
            testbed.sim.spawn(worker(testbed.sim))) == 3 * BLOCK
        assert testbed.server.stats.getattrs == 1

    def test_mixed_runner_smoke(self):
        from repro.bench.mixed import run_mixed_once
        result = run_mixed_once(TestbedConfig(), nreaders=2, nwriters=1,
                                nstatters=1, scale=1 / 64)
        assert result.throughput_mb_s > 0
        assert len(result.readers) == 2


class TestNoReadAheadHeuristic:
    def test_pinned_at_zero(self):
        from repro.readahead import NoReadAheadHeuristic, ReadState
        heuristic, state = NoReadAheadHeuristic(), ReadState()
        for index in range(5):
            assert heuristic.observe(state, index * BLOCK, BLOCK) == 0

    def test_registered_by_name(self):
        from repro.readahead import make_heuristic
        assert make_heuristic("none").name == "none"

    def test_server_with_none_is_slower(self):
        """With more streams than firmware prefetch segments, server
        read-ahead is the difference between streaming and seeking.
        (At 1-2 streams the drive's own prefetch masks it entirely —
        which is itself one of the paper's benchmarking lessons.)"""
        from repro.bench.runner import run_nfs_once
        none = run_nfs_once(TestbedConfig(server_heuristic="none"),
                            8, scale=1 / 32)
        always = run_nfs_once(TestbedConfig(server_heuristic="always"),
                              8, scale=1 / 32)
        assert always.throughput_mb_s > 1.5 * none.throughput_mb_s
