"""NFSv3 write-verifier crash recovery at the client/server boundary.

These tests drive hand-built scenarios through a real testbed — no
chaos fuzzing — so each protocol obligation is pinned individually:
unstable data is re-sent when the verifier rolls, a COMMIT lost to a
crash and executed by retransmission still recovers, stable writes
survive on their own, and the duplicate-request cache is bounded (with
evictions counted) and cleared per boot.
"""

import pytest

from repro.faults import FaultSpec, ServerFaults
from repro.host.testbed import TestbedConfig, build_nfs_testbed

CRASH_AT = 0.3
RESTART = 1.0


def _crash_config(**kwargs) -> TestbedConfig:
    kwargs.setdefault("seed", 5)
    return TestbedConfig(
        faults=FaultSpec(server=ServerFaults(
            crash_times=(CRASH_AT,), restart_delay=RESTART)),
        **kwargs)


def _run(testbed, scenario):
    out = {}
    process = testbed.sim.spawn(scenario(testbed, out), name="scenario")
    testbed.sim.run()
    if process.error is not None:
        raise process.error
    assert process.finished
    return out


class TestVerifierRecovery:
    def test_unstable_writes_resent_after_crash(self):
        testbed = build_nfs_testbed(_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 4 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            yield from mount.write(nfile, 0, 2 * bs)  # blocks 0, 1
            # Let the crash discard the (acknowledged) unstable data.
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            committed = yield from mount.commit(nfile)
            out["committed"] = committed
            out["versions"] = yield from mount.read_versions(
                nfile, [0, 1])

        out = _run(testbed, scenario)
        assert set(out["committed"]) == {0, 1}
        assert out["versions"] == out["committed"]
        stats = testbed.mount.stats
        assert stats.verifier_resends == 2
        assert stats.server_reboots_observed == 1
        assert testbed.server.boot_epoch == 1
        # Durable on the server, not merely echoed from a cache.
        fh = testbed.server.fh_of("f")
        for block, token in out["committed"].items():
            assert testbed.server.durable_token(fh, block) == token

    def test_commit_lost_and_retried_across_crash_boundary(self):
        """The satellite scenario: the COMMIT itself spans the crash.

        The writes are acknowledged under the old verifier; the COMMIT
        issued just after the crash is dropped by the dead server and
        only its *retransmission* executes, against the new boot.  The
        client must notice the rolled verifier in the retried COMMIT's
        reply — not in any WRITE ack — re-send both blocks, and COMMIT
        again.
        """
        testbed = build_nfs_testbed(_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 4 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            yield from mount.write(nfile, 0, 2 * bs)
            # Past the crash instant but inside the restart window: the
            # COMMIT is sent at a dead server and must survive by RPC
            # retransmission alone.
            yield tb.sim.timeout(CRASH_AT + 0.1)
            committed = yield from mount.commit(nfile)
            out["committed"] = committed
            out["versions"] = yield from mount.read_versions(
                nfile, [0, 1])

        out = _run(testbed, scenario)
        assert out["versions"] == out["committed"]
        stats = testbed.mount.stats
        # The verifier change was observed via the retried COMMIT, so
        # the commit loop went around again and re-sent both blocks.
        assert stats.commit_retries >= 1
        assert stats.verifier_resends == 2
        assert stats.server_reboots_observed == 1
        assert testbed.rpc_clients[0].retransmitted >= 1
        assert sum(s.duplicate_executions
                   for s in testbed.rpc_servers) == 0

    def test_stable_write_survives_crash_without_commit(self):
        testbed = build_nfs_testbed(_crash_config())
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 4 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            written = yield from mount.write_stable(nfile, 0, bs)
            out["written"] = written
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["versions"] = yield from mount.read_versions(nfile, [0])

        out = _run(testbed, scenario)
        assert out["versions"][0] == out["written"][0]
        assert testbed.mount.stats.stable_writes == 1
        assert testbed.mount.stats.verifier_resends == 0

    def test_without_recovery_commit_lies_about_durability(self):
        testbed = build_nfs_testbed(
            _crash_config(mount_verifier_recovery=False))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 4 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            yield from mount.write(nfile, 0, bs)
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["committed"] = yield from mount.commit(nfile)
            out["versions"] = yield from mount.read_versions(nfile, [0])

        out = _run(testbed, scenario)
        # The commit claims the token is durable; the server never got
        # it back — exactly the bug the chaos oracle catches.
        assert out["committed"][0] != out["versions"][0]
        assert testbed.mount.stats.verifier_resends == 0

    def test_crash_rolls_verifier_and_clears_dupreq(self):
        testbed = build_nfs_testbed(_crash_config())
        server = testbed.server
        first_verifier = server.write_verifier

        def scenario(tb, out):
            nfile = yield from tb.mount.open("f")
            yield tb.sim.timeout(CRASH_AT + RESTART + 0.5)
            out["nfile"] = nfile

        testbed.server.export_file("f", 1024)
        _run(testbed, scenario)
        assert server.boot_epoch == 1
        assert server.write_verifier != first_verifier
        # Per-boot idempotency scope: the RAM dupreq cache died with
        # the old incarnation.
        for rpc in testbed.rpc_servers:
            assert not rpc._dupreq


class TestDupreqBounds:
    def test_cache_is_bounded_and_counts_evictions(self):
        testbed = build_nfs_testbed(
            TestbedConfig(dupreq_cache_size=2, seed=3))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 6 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            out["versions"] = yield from mount.read_versions(
                nfile, range(6))

        _run(testbed, scenario)
        rpc = testbed.rpc_servers[0]
        assert len(rpc._dupreq) <= 2
        # LOOKUP + 6 READs through a 2-entry cache.
        assert rpc.dupreq_evictions >= 3

    def test_default_cache_never_evicts_in_this_workload(self):
        testbed = build_nfs_testbed(TestbedConfig(seed=3))
        bs = testbed.mount.config.read_size
        testbed.server.export_file("f", 6 * bs)

        def scenario(tb, out):
            mount = tb.mount
            nfile = yield from mount.open("f")
            yield from mount.read(nfile, 0, 6 * bs)

        _run(testbed, scenario)
        assert all(s.dupreq_evictions == 0
                   for s in testbed.rpc_servers)


class TestBufferCacheCrash:
    def test_crash_drops_dirty_blocks(self):
        from repro.kernel import BufferCache, DiskIoScheduler
        from repro.disk import WDC_WD200BB
        from repro.sim import Simulator

        sim = Simulator()
        drive = WDC_WD200BB.build(sim)
        cache = BufferCache(sim, DiskIoScheduler(sim, drive))

        def scenario():
            cache.write(100, 4)
            assert cache.dirty_blocks > 0
            cache.crash()
            assert cache.dirty_blocks == 0
            # A fresh fill of the same blocks works after the wipe.
            yield cache.read(100, 4)

        process = sim.spawn(scenario(), name="s")
        sim.run()
        if process.error is not None:
            raise process.error
        assert process.finished
